//! Mitigation schemes: GhostMinion, its Fig. 9 breakdown variants, and
//! every baseline the paper compares against (Figures 6–8).

use gm_sim::TaintMode;
use gm_stats::Json;

/// Configuration of the GhostMinion mechanisms, enabling the Fig. 9
/// breakdown: each component can be enabled independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GhostMinionConfig {
    /// Data-side GhostMinion attached to the L1D.
    pub dminion: bool,
    /// Instruction-side GhostMinion attached to the L1I (§4.8).
    pub iminion: bool,
    /// TimeGuarding on minion reads/fills (§4.4). Without it the minion
    /// is "DMinion-Timeless": wiped on misspeculation but blind to
    /// backwards-in-time channels.
    pub timeguard: bool,
    /// Leapfrogging/timeleaping in the MSHR hierarchy (§4.5).
    pub leapfrog: bool,
    /// Coherence extensions: minion lines Shared-only, non-coherent
    /// forwarding with commit-time replay (§4.6).
    pub coherence: bool,
    /// Prefetcher trained only on committed accesses (§4.7).
    pub prefetch_gate: bool,
    /// Per-minion capacity in bytes (Table 1 default: 2 KiB).
    pub minion_bytes: u64,
    /// Minion associativity (Table 1 default: 2-way).
    pub minion_ways: usize,
    /// §6.4: asynchronously reload lines that were lost from the minion
    /// before commit (removes the small-minion performance spikes).
    pub async_reload: bool,
}

impl Default for GhostMinionConfig {
    fn default() -> Self {
        Self {
            dminion: true,
            iminion: true,
            timeguard: true,
            leapfrog: true,
            coherence: true,
            prefetch_gate: true,
            minion_bytes: 2048,
            minion_ways: 2,
            async_reload: false,
        }
    }
}

/// Which mitigation is in effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// Unprotected out-of-order baseline (the figures' 1.0 line).
    Unsafe,
    /// GhostMinion with the given component configuration.
    GhostMinion(GhostMinionConfig),
    /// MuonTrap: an L0 filter cache for speculative fills, accessed
    /// serially before the L1. `flush` selects MuonTrap-Flush, which
    /// clears the filter cache on misspeculation.
    MuonTrap {
        /// Clear the filter cache on misspeculation (MuonTrap-Flush).
        flush: bool,
    },
    /// InvisiSpec: speculative loads are invisible (no fill anywhere);
    /// the data becomes visible via a commit-time exposure/validation.
    /// `future` selects InvisiSpec-Future (blocking validation at
    /// commit); otherwise InvisiSpec-Spectre (non-blocking exposure).
    InvisiSpec {
        /// Block commit on validation (InvisiSpec-Future) instead of
        /// issuing a non-blocking exposure (InvisiSpec-Spectre).
        future: bool,
    },
    /// Speculative Taint Tracking: loads whose address depends on a
    /// speculatively loaded value are delayed until their visibility
    /// point. `future` selects STT-Future.
    Stt {
        /// Delay tainted loads until commit (STT-Future) instead of
        /// until all older branches resolve (STT-Spectre).
        future: bool,
    },
}

/// A complete scheme: the kind plus core-side knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scheme {
    /// Which mitigation mechanism this scheme models.
    pub kind: SchemeKind,
    /// §4.9 strictness-ordered scheduling of non-pipelined functional
    /// units. Off by default even for GhostMinion, mirroring the paper's
    /// evaluation ("we do not include this cost saving in the rest of the
    /// evaluation"); the `fu_order` bench turns it on.
    pub strict_fu_order: bool,
}

impl Scheme {
    /// The unprotected baseline.
    pub fn unsafe_baseline() -> Self {
        Self {
            kind: SchemeKind::Unsafe,
            strict_fu_order: false,
        }
    }

    /// Full GhostMinion (all components, Table 1 sizing).
    pub fn ghost_minion() -> Self {
        Self {
            kind: SchemeKind::GhostMinion(GhostMinionConfig::default()),
            strict_fu_order: false,
        }
    }

    /// GhostMinion with a custom component configuration.
    pub fn ghost_minion_with(cfg: GhostMinionConfig) -> Self {
        Self {
            kind: SchemeKind::GhostMinion(cfg),
            strict_fu_order: false,
        }
    }

    /// Fig. 9 "DMinion-Timeless": data minion, wiped on misspeculation,
    /// no timestamps.
    pub fn dminion_timeless() -> Self {
        Self::ghost_minion_with(GhostMinionConfig {
            iminion: false,
            timeguard: false,
            leapfrog: false,
            coherence: false,
            prefetch_gate: false,
            ..GhostMinionConfig::default()
        })
    }

    /// Fig. 9 "DMinion": data minion with TimeGuarding and leapfrogging.
    pub fn dminion_only() -> Self {
        Self::ghost_minion_with(GhostMinionConfig {
            iminion: false,
            coherence: false,
            prefetch_gate: false,
            ..GhostMinionConfig::default()
        })
    }

    /// Fig. 9 "IMinion": instruction-side minion only.
    pub fn iminion_only() -> Self {
        Self::ghost_minion_with(GhostMinionConfig {
            dminion: false,
            coherence: false,
            prefetch_gate: false,
            ..GhostMinionConfig::default()
        })
    }

    /// Fig. 9 "Coherence": DMinion plus the coherence extensions.
    pub fn dminion_coherence() -> Self {
        Self::ghost_minion_with(GhostMinionConfig {
            iminion: false,
            prefetch_gate: false,
            ..GhostMinionConfig::default()
        })
    }

    /// Fig. 9 "Prefetcher": DMinion plus commit-only prefetcher training.
    pub fn dminion_prefetcher() -> Self {
        Self::ghost_minion_with(GhostMinionConfig {
            iminion: false,
            coherence: false,
            ..GhostMinionConfig::default()
        })
    }

    /// MuonTrap without post-misspeculation flush.
    pub fn muontrap() -> Self {
        Self {
            kind: SchemeKind::MuonTrap { flush: false },
            strict_fu_order: false,
        }
    }

    /// MuonTrap-Flush.
    pub fn muontrap_flush() -> Self {
        Self {
            kind: SchemeKind::MuonTrap { flush: true },
            strict_fu_order: false,
        }
    }

    /// InvisiSpec-Spectre.
    pub fn invisispec_spectre() -> Self {
        Self {
            kind: SchemeKind::InvisiSpec { future: false },
            strict_fu_order: false,
        }
    }

    /// InvisiSpec-Future.
    pub fn invisispec_future() -> Self {
        Self {
            kind: SchemeKind::InvisiSpec { future: true },
            strict_fu_order: false,
        }
    }

    /// STT-Spectre.
    pub fn stt_spectre() -> Self {
        Self {
            kind: SchemeKind::Stt { future: false },
            strict_fu_order: false,
        }
    }

    /// STT-Future.
    pub fn stt_future() -> Self {
        Self {
            kind: SchemeKind::Stt { future: true },
            strict_fu_order: false,
        }
    }

    /// The STT core-side taint mode this scheme requires, if any.
    pub fn taint_mode(&self) -> Option<TaintMode> {
        match self.kind {
            SchemeKind::Stt { future: false } => Some(TaintMode::Spectre),
            SchemeKind::Stt { future: true } => Some(TaintMode::Future),
            _ => None,
        }
    }

    /// The GhostMinion component configuration, when applicable.
    pub fn gm_config(&self) -> Option<GhostMinionConfig> {
        match self.kind {
            SchemeKind::GhostMinion(c) => Some(c),
            _ => None,
        }
    }

    /// Display name matching the figures' legends.
    pub fn name(&self) -> &'static str {
        match self.kind {
            SchemeKind::Unsafe => "Unsafe",
            SchemeKind::GhostMinion(c) => {
                if !c.timeguard {
                    "DMinion-Timeless"
                } else if c.dminion && c.iminion && c.coherence && c.prefetch_gate {
                    "GhostMinion"
                } else if !c.dminion {
                    "IMinion"
                } else if c.coherence {
                    "Coherence"
                } else if c.prefetch_gate {
                    "Prefetcher"
                } else {
                    "DMinion"
                }
            }
            SchemeKind::MuonTrap { flush: false } => "MuonTrap",
            SchemeKind::MuonTrap { flush: true } => "MuonTrap-Flush",
            SchemeKind::InvisiSpec { future: false } => "InvisiSpec-Spectre",
            SchemeKind::InvisiSpec { future: true } => "InvisiSpec-Future",
            SchemeKind::Stt { future: false } => "STT-Spectre",
            SchemeKind::Stt { future: true } => "STT-Future",
        }
    }

    /// Canonical-JSON form of the scheme: every knob that changes
    /// simulated behaviour, spelled out field by field in a fixed order.
    ///
    /// This is half of a result's cache fingerprint (the other half is
    /// [`crate::SystemConfig::canonical_json`]), so two schemes render
    /// identically *iff* they would produce identical simulations. The
    /// display [`Scheme::name`] is deliberately not part of it: labels
    /// may be reworded without invalidating stored results.
    pub fn canonical_json(&self) -> Json {
        let mut j = Json::object();
        match self.kind {
            SchemeKind::Unsafe => {
                j.set("kind", "unsafe");
            }
            SchemeKind::GhostMinion(c) => {
                // Exhaustive destructuring (no `..`): a new component
                // knob fails to compile here until it joins the
                // fingerprint, so it can never silently produce stale
                // cache hits.
                let GhostMinionConfig {
                    dminion,
                    iminion,
                    timeguard,
                    leapfrog,
                    coherence,
                    prefetch_gate,
                    minion_bytes,
                    minion_ways,
                    async_reload,
                } = c;
                j.set("kind", "ghostminion")
                    .set("dminion", dminion)
                    .set("iminion", iminion)
                    .set("timeguard", timeguard)
                    .set("leapfrog", leapfrog)
                    .set("coherence", coherence)
                    .set("prefetch_gate", prefetch_gate)
                    .set("minion_bytes", minion_bytes)
                    .set("minion_ways", minion_ways)
                    .set("async_reload", async_reload);
            }
            SchemeKind::MuonTrap { flush } => {
                j.set("kind", "muontrap").set("flush", flush);
            }
            SchemeKind::InvisiSpec { future } => {
                j.set("kind", "invisispec").set("future", future);
            }
            SchemeKind::Stt { future } => {
                j.set("kind", "stt").set("future", future);
            }
        }
        j.set("strict_fu_order", self.strict_fu_order);
        j
    }

    /// The seven schemes plotted in Figures 6–8, in legend order,
    /// preceded by the unsafe baseline.
    pub fn figure_lineup() -> Vec<Scheme> {
        vec![
            Self::unsafe_baseline(),
            Self::ghost_minion(),
            Self::muontrap(),
            Self::muontrap_flush(),
            Self::invisispec_spectre(),
            Self::invisispec_future(),
            Self::stt_spectre(),
            Self::stt_future(),
        ]
    }

    /// The Fig. 9 breakdown lineup.
    pub fn breakdown_lineup() -> Vec<Scheme> {
        vec![
            Self::dminion_timeless(),
            Self::dminion_only(),
            Self::iminion_only(),
            Self::dminion_coherence(),
            Self::dminion_prefetcher(),
            Self::ghost_minion(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(Scheme::ghost_minion().name(), "GhostMinion");
        assert_eq!(Scheme::muontrap().name(), "MuonTrap");
        assert_eq!(Scheme::muontrap_flush().name(), "MuonTrap-Flush");
        assert_eq!(Scheme::invisispec_spectre().name(), "InvisiSpec-Spectre");
        assert_eq!(Scheme::invisispec_future().name(), "InvisiSpec-Future");
        assert_eq!(Scheme::stt_spectre().name(), "STT-Spectre");
        assert_eq!(Scheme::stt_future().name(), "STT-Future");
        assert_eq!(Scheme::dminion_timeless().name(), "DMinion-Timeless");
        assert_eq!(Scheme::dminion_only().name(), "DMinion");
        assert_eq!(Scheme::iminion_only().name(), "IMinion");
        assert_eq!(Scheme::dminion_coherence().name(), "Coherence");
        assert_eq!(Scheme::dminion_prefetcher().name(), "Prefetcher");
        assert_eq!(Scheme::unsafe_baseline().name(), "Unsafe");
    }

    #[test]
    fn taint_mode_only_for_stt() {
        assert_eq!(Scheme::stt_spectre().taint_mode(), Some(TaintMode::Spectre));
        assert_eq!(Scheme::stt_future().taint_mode(), Some(TaintMode::Future));
        assert_eq!(Scheme::ghost_minion().taint_mode(), None);
        assert_eq!(Scheme::unsafe_baseline().taint_mode(), None);
    }

    #[test]
    fn default_gm_config_is_table1() {
        let c = GhostMinionConfig::default();
        assert_eq!(c.minion_bytes, 2048);
        assert_eq!(c.minion_ways, 2);
        assert!(c.dminion && c.iminion && c.timeguard && c.leapfrog);
        assert!(c.coherence && c.prefetch_gate);
        assert!(!c.async_reload);
    }

    #[test]
    fn lineups_have_expected_sizes() {
        assert_eq!(Scheme::figure_lineup().len(), 8);
        assert_eq!(Scheme::breakdown_lineup().len(), 6);
    }

    #[test]
    fn canonical_json_distinguishes_every_knob() {
        // Every scheme in both lineups plus §4.9 and sizing variants must
        // render to a distinct canonical form.
        let mut strict = Scheme::ghost_minion();
        strict.strict_fu_order = true;
        let mut all = Scheme::figure_lineup();
        all.extend(Scheme::breakdown_lineup());
        all.push(strict);
        all.push(Scheme::ghost_minion_with(GhostMinionConfig {
            minion_bytes: 128,
            ..GhostMinionConfig::default()
        }));
        all.push(Scheme::ghost_minion_with(GhostMinionConfig {
            minion_bytes: 128,
            async_reload: true,
            ..GhostMinionConfig::default()
        }));
        let mut rendered: Vec<String> = all.iter().map(|s| s.canonical_json().render()).collect();
        // GhostMinion appears in both lineups; dedup only collapses that.
        rendered.sort_unstable();
        rendered.dedup();
        assert_eq!(rendered.len(), all.len() - 1, "canonical forms collide");
    }

    #[test]
    fn canonical_json_is_stable_for_equal_schemes() {
        assert_eq!(
            Scheme::ghost_minion().canonical_json().render(),
            Scheme::ghost_minion().canonical_json().render()
        );
        assert!(Scheme::ghost_minion()
            .canonical_json()
            .render()
            .contains("\"minion_bytes\":2048"));
    }

    #[test]
    fn breakdown_variants_differ_from_full() {
        let full = Scheme::ghost_minion().gm_config().unwrap();
        let dm = Scheme::dminion_only().gm_config().unwrap();
        assert!(full.coherence && !dm.coherence);
        assert!(full.iminion && !dm.iminion);
        assert!(dm.timeguard, "DMinion keeps TimeGuarding");
        assert!(!Scheme::dminion_timeless().gm_config().unwrap().timeguard);
    }
}
