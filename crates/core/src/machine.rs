//! The full machine: out-of-order cores plus the scheme's memory system.

use crate::memsys::{HierarchyConfig, MemStats, MemorySystem};
use crate::scheme::Scheme;
use gm_isa::Program;
use gm_mem::CacheConfig;
use gm_sim::{Core, CoreConfig, CoreStats, IssueMode, MemoryBackend, TraceSink};
use gm_stats::Json;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Wake-ordered schedule over the machine's cores: a min-heap keyed on
/// each core's `next_wake`, with lazy invalidation (reschedules push a
/// fresh entry; stale entries are discarded when they surface). The
/// authoritative wake cycle lives in `wake`, so a popped entry is valid
/// exactly when it still matches.
///
/// The heap sees only *sleeping* cores. A core due at the very next
/// cycle — the steady state of a core making progress — is tracked by a
/// bare counter (`due_next`) instead, so consecutive busy cycles cost
/// zero heap traffic; heap pushes happen only when a core goes
/// quiescent, which is exactly when they pay for themselves.
struct WakeSchedule {
    /// Authoritative next-wake cycle per core (`u64::MAX` = halted).
    wake: Vec<u64>,
    /// (wake, core) min-heap of sleeping cores; may hold stale entries
    /// for cores woken early (cancellations) or re-slept since.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Number of live cores scheduled for exactly the next cycle (and
    /// deliberately *not* in the heap).
    due_next: usize,
}

impl WakeSchedule {
    fn new(n: usize, start: u64) -> Self {
        Self {
            wake: vec![start; n],
            heap: (0..n).map(|i| Reverse((start, i))).collect(),
            due_next: 0,
        }
    }

    /// The cycle core `i` is scheduled to wake at.
    fn wake(&self, i: usize) -> u64 {
        self.wake[i]
    }

    /// Reschedules core `i` to wake at `at`, where `next` is the cycle
    /// after the one being processed.
    fn set(&mut self, i: usize, at: u64, next: u64) {
        self.wake[i] = at;
        if at == next {
            self.due_next += 1;
        } else {
            self.heap.push(Reverse((at, i)));
        }
    }

    /// Removes core `i` from the schedule (halted).
    fn halt(&mut self, i: usize) {
        self.wake[i] = u64::MAX;
    }

    /// Moves core `i`'s wake to `next` if currently later (the
    /// cancellation push channel never delays a core). The stale heap
    /// entry is discarded when it surfaces.
    fn pull_to_next(&mut self, i: usize, next: u64) {
        if next < self.wake[i] {
            self.wake[i] = next;
            self.due_next += 1;
        }
    }

    /// The next cycle to process: the next cycle itself if any core is
    /// due then, otherwise the earliest sleeper in the heap (discarding
    /// stale entries along the way). `None` only when no core is
    /// scheduled at all.
    fn next_cycle(&mut self, next: u64) -> Option<u64> {
        if self.due_next > 0 {
            self.due_next = 0;
            return Some(next);
        }
        while let Some(&Reverse((at, i))) = self.heap.peek() {
            if self.wake[i] == at {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }
}

/// Complete system configuration (Table 1 by default).
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Per-core pipeline configuration.
    pub core: CoreConfig,
    /// Memory hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// Simulation deadline: a run that has not halted within this many
    /// cycles is treated as deadlocked. This is the single knob every
    /// harness reads; [`Machine::run`] receives it via
    /// `gm_bench::run_single` and the bench runner.
    pub max_cycles: u64,
}

impl SystemConfig {
    /// Upper bound for any single Table 1 simulation (a run that exceeds
    /// this has deadlocked).
    pub const MICRO2021_MAX_CYCLES: u64 = 2_000_000_000;

    /// The paper's Table 1 system.
    pub fn micro2021() -> Self {
        Self {
            core: CoreConfig::micro2021(),
            hierarchy: HierarchyConfig::micro2021(),
            max_cycles: Self::MICRO2021_MAX_CYCLES,
        }
    }

    /// Small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            core: CoreConfig::tiny(),
            hierarchy: HierarchyConfig::tiny(),
            // Tiny workloads are short; anything past this is a hang.
            max_cycles: 50_000_000,
        }
    }

    /// Returns the configuration with a different simulation deadline.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Canonical-JSON form of the full system configuration: every
    /// field of the core, hierarchy, predictor, prefetcher, and DRAM
    /// models, in a fixed order.
    ///
    /// Together with [`Scheme::canonical_json`] this is the fingerprint
    /// input of the result store: any field change (even a latency tweak)
    /// renders differently and therefore invalidates cached results.
    /// Every struct is destructured *exhaustively* (no `..`), so adding
    /// a configuration field fails to compile here until it is added to
    /// the rendering — the only way a new knob could silently escape the
    /// fingerprint and cause stale cache hits.
    pub fn canonical_json(&self) -> Json {
        let Self {
            core: c,
            hierarchy: h,
            max_cycles,
        } = *self;
        let gm_sim::CoreConfig {
            fetch_width,
            rename_width,
            issue_width,
            commit_width,
            rob_entries,
            iq_entries,
            lq_entries,
            sq_entries,
            int_regs,
            fp_regs,
            int_alu,
            fp_alu,
            muldiv,
            frontend_delay,
            fetch_buffer,
            bpred,
            strict_fu_order,
            taint_mode,
        } = c;
        let gm_sim::BpredConfig {
            local_entries,
            global_entries,
            choice_entries,
            btb_entries,
            ras_entries,
        } = bpred;
        let mut core = Json::object();
        core.set("fetch_width", fetch_width)
            .set("rename_width", rename_width)
            .set("issue_width", issue_width)
            .set("commit_width", commit_width)
            .set("rob_entries", rob_entries)
            .set("iq_entries", iq_entries)
            .set("lq_entries", lq_entries)
            .set("sq_entries", sq_entries)
            .set("int_regs", int_regs)
            .set("fp_regs", fp_regs)
            .set("int_alu", int_alu)
            .set("fp_alu", fp_alu)
            .set("muldiv", muldiv)
            .set("frontend_delay", frontend_delay)
            .set("fetch_buffer", fetch_buffer)
            .set("bpred", {
                let mut j = Json::object();
                j.set("local_entries", local_entries)
                    .set("global_entries", global_entries)
                    .set("choice_entries", choice_entries)
                    .set("btb_entries", btb_entries)
                    .set("ras_entries", ras_entries);
                j
            })
            // The per-scheme overrides (Machine::new replaces both from
            // the Scheme) still belong here: a config can also set them
            // directly, e.g. through run_single.
            .set("strict_fu_order", strict_fu_order)
            .set(
                "taint_mode",
                match taint_mode {
                    None => Json::Null,
                    Some(gm_sim::TaintMode::Spectre) => Json::from("spectre"),
                    Some(gm_sim::TaintMode::Future) => Json::from("future"),
                },
            );

        let cache = |cc: CacheConfig| {
            let CacheConfig {
                size_bytes,
                ways,
                latency,
            } = cc;
            let mut j = Json::object();
            j.set("size_bytes", size_bytes)
                .set("ways", ways)
                .set("latency", latency);
            j
        };
        let HierarchyConfig {
            l1i,
            l1d,
            l1_mshrs,
            l2,
            l2_mshrs,
            dram,
            prefetcher,
            l0_bytes,
            l0_ways,
            replay_latency,
        } = h;
        let gm_mem::DramConfig {
            banks,
            row_bytes,
            t_cas,
            t_rcd,
            t_rp,
            t_burst,
            close_speculative_pages,
        } = dram;
        let gm_mem::StridePrefetcherConfig {
            entries,
            threshold,
            max_confidence,
            degree,
            max_distance,
        } = prefetcher;
        let mut hier = Json::object();
        hier.set("l1i", cache(l1i))
            .set("l1d", cache(l1d))
            .set("l1_mshrs", l1_mshrs)
            .set("l2", cache(l2))
            .set("l2_mshrs", l2_mshrs)
            .set("dram", {
                let mut j = Json::object();
                j.set("banks", banks)
                    .set("row_bytes", row_bytes)
                    .set("t_cas", t_cas)
                    .set("t_rcd", t_rcd)
                    .set("t_rp", t_rp)
                    .set("t_burst", t_burst)
                    .set("close_speculative_pages", close_speculative_pages);
                j
            })
            .set("prefetcher", {
                let mut j = Json::object();
                j.set("entries", entries)
                    .set("threshold", u64::from(threshold))
                    .set("max_confidence", u64::from(max_confidence))
                    .set("degree", degree)
                    .set("max_distance", max_distance);
                j
            })
            .set("l0_bytes", l0_bytes)
            .set("l0_ways", l0_ways)
            .set("replay_latency", replay_latency);

        let mut j = Json::object();
        j.set("core", core)
            .set("hierarchy", hier)
            .set("max_cycles", max_cycles);
        j
    }
}

/// Result of a completed run.
///
/// `MachineResult` is `Send` (a static assertion below keeps it that
/// way): the bench runner moves results across worker threads, and the
/// fields carry enough metadata — scheme, core count, per-core and
/// memory-system counters — to serialise a run as JSON without holding
/// onto the `Machine`.
#[derive(Clone, Debug)]
pub struct MachineResult {
    /// Cycles until every core halted.
    pub cycles: u64,
    /// Per-core pipeline statistics.
    pub core_stats: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem_stats: MemStats,
    /// Scheme that was run (for report labelling).
    pub scheme_name: &'static str,
    /// Number of simulated cores (one program per core).
    pub threads: usize,
}

impl MachineResult {
    /// Total committed instructions across cores.
    pub fn committed(&self) -> u64 {
        self.core_stats.iter().map(|s| s.committed).sum()
    }
}

/// Cores + memory system under one mitigation scheme.
pub struct Machine {
    cores: Vec<Core>,
    mem: MemorySystem,
    cycle: u64,
}

impl Machine {
    /// Builds a machine running one program per core. Core-side scheme
    /// settings (STT taint mode, §4.9 FU ordering) are applied to the
    /// core configuration automatically.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn new(scheme: Scheme, cfg: SystemConfig, programs: Vec<Program>) -> Self {
        assert!(!programs.is_empty(), "need at least one program");
        let n = programs.len();
        let mut core_cfg = cfg.core;
        core_cfg.taint_mode = scheme.taint_mode();
        core_cfg.strict_fu_order = scheme.strict_fu_order;
        let mut mem = MemorySystem::new(scheme, cfg.hierarchy, n);
        let cores: Vec<Core> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Core::new(i, core_cfg, p))
            .collect();
        for c in &cores {
            c.install_program_data(&mut mem);
        }
        Self {
            cores,
            mem,
            cycle: 0,
        }
    }

    /// Enables the Strictness-Order auditor (records timing flows for
    /// post-hoc checking; slows simulation).
    pub fn enable_auditor(&mut self) {
        self.mem.auditor = Some(crate::order::OrderAuditor::new());
    }

    /// The auditor, if enabled.
    pub fn auditor(&self) -> Option<&crate::order::OrderAuditor> {
        self.mem.auditor.as_ref()
    }

    /// Selects the issue-stage implementation on every core.
    /// [`IssueMode::Event`] (wakeup lists) is the default;
    /// [`IssueMode::Scan`] is the linear-scan oracle the equivalence
    /// tests compare against. Call before the first tick.
    pub fn set_issue_mode(&mut self, mode: IssueMode) {
        for core in &mut self.cores {
            core.set_issue_mode(mode);
        }
    }

    /// Installs one trace sink shared by every core: each core gets a
    /// clone of the same `Rc` handle, so a multicore machine streams
    /// all cores' lifecycle events into a single observer (events
    /// carry the core index). Tracing is observation-only and provably
    /// never perturbs simulation — see [`gm_sim::TraceSink`] and the
    /// trace-neutrality oracle tests. Call before the first tick.
    pub fn set_trace(&mut self, sink: Rc<RefCell<dyn TraceSink>>) {
        for core in &mut self.cores {
            core.set_trace(Rc::clone(&sink));
        }
    }

    /// Access to a core (register readout, stats).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Access to the memory system (stats, probes in tests).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Advances the whole machine one cycle.
    pub fn tick(&mut self) {
        for core in &mut self.cores {
            core.tick(&mut self.mem, self.cycle);
        }
        self.cycle += 1;
    }

    /// Whether every core has halted.
    pub fn halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted())
    }

    /// Runs until all cores halt (or `max_cycles`), returning the result.
    ///
    /// The loop is wake-ordered: a min-heap keyed on each core's
    /// `next_wake` picks the earliest cycle at which *any* core can act,
    /// and only the cores due at that cycle are ticked — a core stalled
    /// on memory for a thousand cycles costs zero `tick` calls while the
    /// other cores keep running. Per-cycle stall counters of the elided
    /// cycles are replayed just before a slept core's next real tick, so
    /// skipping is invisible in the statistics. Cores are always ticked
    /// in index order within a cycle, exactly like the per-cycle loop.
    ///
    /// The one way the memory system pushes an event *at* a core is a
    /// leapfrog cancellation (§4.5): when any are queued after a cycle,
    /// the affected sleeping cores are re-scheduled for the very next
    /// cycle (and a core later in index order is caught the same cycle),
    /// which is precisely when the per-cycle engine's quiescence memo
    /// would have noticed the cancellation. The memory system is
    /// otherwise purely reactive (every latency is computed when a
    /// request arrives), so a cycle in which no core acts cannot change
    /// backend state either — results are bit-identical to
    /// [`Machine::run_lockstep`].
    ///
    /// # Panics
    ///
    /// Panics if any core fails to halt within `max_cycles` — a workload
    /// that does not terminate is a harness bug.
    ///
    /// # Examples
    ///
    /// ```
    /// use ghostminion::{Machine, Scheme, SystemConfig};
    /// use gm_isa::{Asm, Reg};
    ///
    /// let mut a = Asm::new("answer");
    /// a.li(Reg::x(1), 42);
    /// a.halt();
    /// let cfg = SystemConfig::tiny();
    /// let mut m = Machine::new(Scheme::ghost_minion(), cfg, vec![a.assemble()]);
    /// let result = m.run(cfg.max_cycles);
    /// assert!(result.cycles > 0);
    /// assert_eq!(m.core(0).reg(Reg::x(1)), 42);
    /// ```
    pub fn run(&mut self, max_cycles: u64) -> MachineResult {
        let n = self.cores.len();
        let mut sched = WakeSchedule::new(n, self.cycle);
        // Cycle of each core's last real tick, for idle-counter replay.
        let mut last_tick = vec![self.cycle; n];
        let mut live = 0usize;
        for (i, c) in self.cores.iter().enumerate() {
            if c.halted() {
                sched.halt(i);
            } else {
                live += 1;
            }
        }
        while live > 0 {
            let Some(now) = sched.next_cycle(self.cycle) else {
                break;
            };
            if now >= max_cycles {
                self.cycle = max_cycles;
                break;
            }
            debug_assert!(now >= self.cycle, "scheduler must move forward");
            let next = now + 1;
            for (i, last) in last_tick.iter_mut().enumerate() {
                if self.cores[i].halted() {
                    continue;
                }
                if sched.wake(i) > now && !self.mem.cancellations_pending(i) {
                    // Not due, and no cancellation (possibly pushed by an
                    // earlier core *this* cycle) redirects it here.
                    continue;
                }
                if now > *last + 1 {
                    self.cores[i].account_idle_cycles(now - *last - 1);
                }
                let outcome = self.cores[i].tick(&mut self.mem, now);
                *last = now;
                if self.cores[i].halted() {
                    live -= 1;
                    sched.halt(i);
                } else {
                    sched.set(i, outcome.next_wake.max(next), next);
                }
            }
            if self.mem.any_cancellations_pending() {
                // Push channel: a cancellation queued this cycle for a
                // core at or before its issuer's index is seen at the
                // next cycle — the same moment the per-cycle engine's
                // memo check would see it.
                for i in 0..n {
                    if !self.cores[i].halted() && self.mem.cancellations_pending(i) {
                        sched.pull_to_next(i, next);
                    }
                }
            }
            self.cycle = next;
        }
        assert!(
            self.halted(),
            "machine did not halt within {max_cycles} cycles (scheme {})",
            self.mem.scheme().name()
        );
        self.result()
    }

    /// Disables the busy-path stage gating on every core, so each tick
    /// dispatches every stage body unconditionally. The equivalence
    /// tests use this to pit a gated run against an ungated oracle.
    /// Call before the first tick.
    pub fn disable_stage_gating(&mut self) {
        for core in &mut self.cores {
            core.disable_stage_gating();
        }
    }

    /// Reference run loop ticking every core on every cycle, kept as the
    /// oracle for the cycle-skipping equivalence tests. Disables the
    /// cores' quiescent-tick memo and their stage gating so the oracle
    /// re-runs every stage on every cycle.
    pub fn run_lockstep(&mut self, max_cycles: u64) -> MachineResult {
        for core in &mut self.cores {
            core.disable_tick_memo();
            core.disable_stage_gating();
        }
        while !self.halted() && self.cycle < max_cycles {
            self.tick();
        }
        assert!(
            self.halted(),
            "machine did not halt within {max_cycles} cycles (scheme {})",
            self.mem.scheme().name()
        );
        self.result()
    }

    fn result(&self) -> MachineResult {
        MachineResult {
            cycles: self.cycle,
            core_stats: self.cores.iter().map(|c| *c.stats()).collect(),
            mem_stats: self.mem.stats().clone(),
            scheme_name: self.mem.scheme().name(),
            threads: self.cores.len(),
        }
    }
}

/// Convenience: runs `program` once under `scheme` on a single core and
/// returns the result.
pub fn run_single(scheme: Scheme, cfg: SystemConfig, program: Program) -> MachineResult {
    Machine::new(scheme, cfg, vec![program]).run(cfg.max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_isa::{Asm, DataSegment, Reg};
    use gm_sim::MemoryBackend;

    fn sum_array_program(n: u64) -> Program {
        let mut a = Asm::new("sum-array");
        let base = 0x10_0000u64;
        let data: Vec<u64> = (0..n).collect();
        a.data(DataSegment::words(base, &data));
        let (ptr, end, acc, v) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4));
        a.li(ptr, base as i64);
        a.li(end, (base + 8 * n) as i64);
        a.li(acc, 0);
        let top = a.here();
        a.ld(v, ptr, 0);
        a.add(acc, acc, v);
        a.addi(ptr, ptr, 8);
        a.bne(ptr, end, top);
        a.halt();
        a.assemble()
    }

    #[test]
    fn all_schemes_compute_the_same_result() {
        let expected: u64 = (0..64).sum();
        for scheme in Scheme::figure_lineup() {
            let mut m = Machine::new(scheme, SystemConfig::tiny(), vec![sum_array_program(64)]);
            let r = m.run(2_000_000);
            assert_eq!(
                m.core(0).reg(Reg::x(3)),
                expected,
                "scheme {} must be functionally transparent",
                r.scheme_name
            );
        }
    }

    #[test]
    fn breakdown_schemes_compute_the_same_result() {
        let expected: u64 = (0..64).sum();
        for scheme in Scheme::breakdown_lineup() {
            let mut m = Machine::new(scheme, SystemConfig::tiny(), vec![sum_array_program(64)]);
            let r = m.run(2_000_000);
            assert_eq!(m.core(0).reg(Reg::x(3)), expected, "{}", r.scheme_name);
        }
    }

    #[test]
    fn protected_schemes_are_not_faster_than_unsafe_here() {
        // On a cache-unfriendly workload the unsafe baseline should be at
        // least as fast as the strongly-protected InvisiSpec-Future.
        let base = run_single(
            Scheme::unsafe_baseline(),
            SystemConfig::tiny(),
            sum_array_program(256),
        );
        let future = run_single(
            Scheme::invisispec_future(),
            SystemConfig::tiny(),
            sum_array_program(256),
        );
        assert!(
            future.cycles >= base.cycles,
            "InvisiSpec-Future ({}) should not beat unsafe ({})",
            future.cycles,
            base.cycles
        );
    }

    #[test]
    fn ghostminion_overhead_is_bounded_on_simple_streaming() {
        let base = run_single(
            Scheme::unsafe_baseline(),
            SystemConfig::tiny(),
            sum_array_program(256),
        );
        let gm = run_single(
            Scheme::ghost_minion(),
            SystemConfig::tiny(),
            sum_array_program(256),
        );
        let ratio = gm.cycles as f64 / base.cycles as f64;
        assert!(
            ratio < 2.0,
            "GhostMinion ratio {ratio:.2} should be far below heavyweight schemes"
        );
    }

    #[test]
    fn multicore_shared_counter_with_ll_sc() {
        // 4 cores each add 1 to a shared counter 50 times under a
        // spinlock built from LL/SC.
        let lock = 0x20_0000u64;
        let counter = 0x20_0040u64;
        let make = |id: u64| {
            let mut a = Asm::new(format!("locker-{id}"));
            let (laddr, caddr, tmp, ok, i, n, one) = (
                Reg::x(1),
                Reg::x(2),
                Reg::x(3),
                Reg::x(4),
                Reg::x(5),
                Reg::x(6),
                Reg::x(7),
            );
            a.li(laddr, lock as i64);
            a.li(caddr, counter as i64);
            a.li(i, 0);
            a.li(n, 50);
            a.li(one, 1);
            let outer = a.here();
            // acquire: spin until ll sees 0 and sc of 1 succeeds
            let acquire = a.here();
            a.ll(tmp, laddr);
            a.bne(tmp, Reg::ZERO, acquire);
            a.sc(ok, one, laddr);
            a.bne(ok, Reg::ZERO, acquire);
            // Acquire fence: the critical-section load must not be
            // hoisted above the lock acquisition by the OoO core.
            a.fence();
            // critical section
            a.ld(tmp, caddr, 0);
            a.addi(tmp, tmp, 1);
            a.st(tmp, caddr, 0);
            // release
            a.st(Reg::ZERO, laddr, 0);
            a.addi(i, i, 1);
            a.bne(i, n, outer);
            a.halt();
            a.assemble()
        };
        let programs = (0..4).map(make).collect();
        let mut m = Machine::new(Scheme::ghost_minion(), SystemConfig::tiny(), programs);
        m.run(10_000_000);
        assert_eq!(
            m.mem().read_value(counter, 8),
            200,
            "LL/SC spinlock must serialise all 200 increments"
        );
    }

    #[test]
    fn result_reports_scheme_and_counts() {
        let r = run_single(
            Scheme::ghost_minion(),
            SystemConfig::tiny(),
            sum_array_program(16),
        );
        assert_eq!(r.scheme_name, "GhostMinion");
        assert_eq!(r.threads, 1);
        assert!(r.committed() > 16 * 4);
        assert!(r.mem_stats.get("loads") > 0);
    }

    #[test]
    fn machine_result_is_send_and_static() {
        // The bench runner moves results between worker threads.
        fn assert_send<T: Send + 'static>() {}
        assert_send::<MachineResult>();
    }

    #[test]
    fn max_cycles_is_one_knob_on_system_config() {
        assert_eq!(
            SystemConfig::micro2021().max_cycles,
            SystemConfig::MICRO2021_MAX_CYCLES
        );
        let cfg = SystemConfig::micro2021().with_max_cycles(1234);
        assert_eq!(cfg.max_cycles, 1234);
    }

    #[test]
    fn canonical_json_pins_the_table1_rendering() {
        // The result store keys cached simulations on this rendering: if
        // this test fails, a config value or the rendering changed — fine,
        // update the pin; old caches must be invalidated anyway. (Missing
        // *new* fields can't happen silently: canonical_json destructures
        // every config struct exhaustively, so that's a compile error.)
        let j = SystemConfig::micro2021().canonical_json().render();
        assert_eq!(
            j,
            "{\"core\":{\"fetch_width\":8,\"rename_width\":8,\"issue_width\":8,\
             \"commit_width\":8,\"rob_entries\":192,\"iq_entries\":64,\
             \"lq_entries\":32,\"sq_entries\":32,\"int_regs\":256,\"fp_regs\":256,\
             \"int_alu\":6,\"fp_alu\":4,\"muldiv\":2,\"frontend_delay\":3,\
             \"fetch_buffer\":16,\"bpred\":{\"local_entries\":2048,\
             \"global_entries\":8192,\"choice_entries\":8192,\"btb_entries\":4096,\
             \"ras_entries\":16},\"strict_fu_order\":false,\"taint_mode\":null},\
             \"hierarchy\":{\"l1i\":{\"size_bytes\":32768,\"ways\":2,\"latency\":2},\
             \"l1d\":{\"size_bytes\":65536,\"ways\":2,\"latency\":2},\"l1_mshrs\":4,\
             \"l2\":{\"size_bytes\":2097152,\"ways\":8,\"latency\":20},\"l2_mshrs\":20,\
             \"dram\":{\"banks\":8,\"row_bytes\":8192,\"t_cas\":28,\"t_rcd\":28,\
             \"t_rp\":28,\"t_burst\":8,\"close_speculative_pages\":false},\
             \"prefetcher\":{\"entries\":64,\"threshold\":2,\"max_confidence\":3,\
             \"degree\":4,\"max_distance\":64},\"l0_bytes\":2048,\"l0_ways\":2,\
             \"replay_latency\":22},\"max_cycles\":2000000000}"
        );
    }

    #[test]
    fn canonical_json_tracks_every_knob_change() {
        let base = SystemConfig::micro2021().canonical_json().render();
        let mut a = SystemConfig::micro2021();
        a.core.rob_entries = 191;
        let mut b = SystemConfig::micro2021();
        b.hierarchy.l2.latency = 21;
        let c = SystemConfig::micro2021().with_max_cycles(1);
        for changed in [a.canonical_json(), b.canonical_json(), c.canonical_json()] {
            assert_ne!(changed.render(), base);
        }
        assert_ne!(base, SystemConfig::tiny().canonical_json().render());
    }
}
