//! The full memory hierarchy of Table 1, implemented once for every
//! mitigation scheme.
//!
//! Per core: 32 KiB 2-way L1I and 64 KiB 2-way L1D (2-cycle, 4 MSHRs
//! each), plus the scheme's speculative structure (GhostMinions accessed
//! in parallel with the L1s; MuonTrap's L0 filter cache accessed
//! serially in front of the L1D). Shared: 2 MiB 8-way L2 (20-cycle, 20
//! MSHRs, 64-entry stride RPT prefetcher) and DDR3-1600 DRAM.
//!
//! Timing uses a synchronous hierarchy walk with future-completion
//! bookkeeping: an access mutates tag/MSHR/DRAM state immediately and
//! returns the cycle its data arrives; MSHR entries hold their slot until
//! that cycle, which is what makes occupancy contention — and therefore
//! leapfrogging and timeleaping (§4.5) — observable.
//!
//! Scheme-specific behaviour, all in this file so the differences are
//! reviewable side by side:
//!
//! * **Unsafe / STT** — speculative misses fill L1+L2 directly; the
//!   prefetcher trains on speculative misses. (STT's protection is in the
//!   core's issue stage.)
//! * **GhostMinion** — speculative fills go only to the minion
//!   (TimeGuarded); commit moves the line to L1/L2 and trains the
//!   prefetcher; squash wipes the minion above the squash timestamp;
//!   MSHRs leapfrog; coherence uses Shared-only minion lines with
//!   non-coherent forwarding replayed at commit (§4.6).
//! * **MuonTrap** — speculative fills go to an L0 filter cache probed
//!   *before* the L1 (one extra cycle on L0 misses); commit promotes to
//!   L1; `flush` wipes the L0 on squash; same non-coherent forwarding.
//! * **InvisiSpec** — speculative loads fill nothing; at commit the line
//!   is exposed (fill L1+L2): non-blocking for -Spectre, blocking
//!   validation for -Future.

use crate::minion::{GhostMinionCache, MinionFill, MinionRead};
use crate::order::{Flow, FlowKind, OrderAuditor};
use crate::scheme::{GhostMinionConfig, Scheme, SchemeKind};
use gm_mem::FxHashSet;
use gm_mem::{
    line_addr, Cache, CacheConfig, Dram, DramConfig, MesiState, MshrFile, SparseMem,
    StridePrefetcher, StridePrefetcherConfig,
};
use gm_sim::{LoadResp, MemReq, MemoryBackend, Ticket};
use gm_stats::Counters;

/// Marks MSHR traffic that has no cancellable owner (stores, prefetches,
/// commit-time reloads).
const NO_OWNER: usize = usize::MAX;

/// Timestamp tag for MSHR entries whose allocating instruction was
/// squashed (§4.2 footnote 2: the wipe covers every timestamp above the
/// squash point, including fills still in flight). The entry keeps its
/// slot — hardware cannot abort the memory access — but it may no longer
/// deliver fast data to later requests, which must observe fresh-miss
/// timing. `u64::MAX` also makes orphans the preferred leapfrog victims.
const SQUASHED_TS: u64 = u64::MAX;

/// Hierarchy geometry; defaults are the paper's Table 1.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// Per-core L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Per-core L1 data cache geometry.
    pub l1d: CacheConfig,
    /// MSHRs per L1 cache.
    pub l1_mshrs: usize,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// MSHRs at the L2.
    pub l2_mshrs: usize,
    /// DRAM timing model.
    pub dram: DramConfig,
    /// L2 stride prefetcher geometry.
    pub prefetcher: StridePrefetcherConfig,
    /// MuonTrap L0 filter cache geometry.
    pub l0_bytes: u64,
    /// MuonTrap L0 filter cache associativity.
    pub l0_ways: usize,
    /// Extra latency charged for a commit-time coherence replay (§4.6) or
    /// InvisiSpec validation that hits the L2.
    pub replay_latency: u64,
}

impl HierarchyConfig {
    /// Table 1: L1I 32 KiB 2-way 2-cycle 4 MSHRs; L1D 64 KiB 2-way
    /// 2-cycle 4 MSHRs; L2 2 MiB 8-way 20-cycle 20 MSHRs with a 64-entry
    /// stride RPT; DDR3-1600.
    pub fn micro2021() -> Self {
        Self {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 2,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                latency: 2,
            },
            l1_mshrs: 4,
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 8,
                latency: 20,
            },
            l2_mshrs: 20,
            dram: DramConfig::ddr3_1600(),
            prefetcher: StridePrefetcherConfig::default(),
            l0_bytes: 2048,
            l0_ways: 2,
            replay_latency: 22,
        }
    }

    /// Small geometry for fast tests: tiny caches so evictions and MSHR
    /// pressure happen quickly.
    pub fn tiny() -> Self {
        Self {
            l1i: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                latency: 2,
            },
            l1_mshrs: 2,
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 4,
                latency: 10,
            },
            l2_mshrs: 4,
            dram: DramConfig::ddr3_1600(),
            prefetcher: StridePrefetcherConfig::default(),
            l0_bytes: 512,
            l0_ways: 2,
            replay_latency: 12,
        }
    }
}

struct PerCore {
    l1i: Cache,
    l1d: Cache,
    l1i_mshr: MshrFile,
    l1d_mshr: MshrFile,
    dminion: GhostMinionCache,
    iminion: GhostMinionCache,
    /// MuonTrap L0 filter cache.
    l0: Cache,
    /// Lines forwarded non-coherently to this core's speculative
    /// structure; the consuming load replays at commit (§4.6).
    noncoherent: FxHashSet<u64>,
}

/// Aggregated memory-side statistics (also the Fig. 10 event sources).
pub type MemStats = Counters;

/// Interned ids for every hot counter this file bumps: each name is
/// resolved once per process (`counter_ids!` caches the id in a
/// per-call-site `OnceLock`), so recording an event is a flat `Vec`
/// index instead of a `BTreeMap<String, _>` walk.
mod id {
    gm_stats::counter_ids! {
        async_reloads => "async_reloads",
        coherence_replays => "coherence_replays",
        commit_moves => "commit_moves",
        dram_accesses => "dram_accesses",
        energy_iminion_reads => "energy_iminion_reads",
        energy_iminion_writes => "energy_iminion_writes",
        energy_l1d_reads => "energy_l1d_reads",
        energy_l1d_writes => "energy_l1d_writes",
        energy_l1i_reads => "energy_l1i_reads",
        energy_minion_reads => "energy_minion_reads",
        energy_minion_writes => "energy_minion_writes",
        exposures => "exposures",
        fill_rejects => "fill_rejects",
        ifetches => "ifetches",
        iminion_commit_moves => "iminion_commit_moves",
        iminion_hits => "iminion_hits",
        l0_hits => "l0_hits",
        l1d_hits => "l1d_hits",
        l1i_hits => "l1i_hits",
        l2_hits => "l2_hits",
        leapfrogs => "leapfrogs",
        loads => "loads",
        lost_at_commit => "lost_at_commit",
        minion_hits => "minion_hits",
        mshr_retries => "mshr_retries",
        noncoherent_forwards => "noncoherent_forwards",
        prefetch_fills => "prefetch_fills",
        squashes => "squashes",
        stores => "stores",
        timeguards => "timeguards",
        timeleaps => "timeleaps",
    }
}

/// The memory system: per-core private level + shared L2/DRAM.
pub struct MemorySystem {
    scheme: Scheme,
    cfg: HierarchyConfig,
    cores: Vec<PerCore>,
    l2: Cache,
    l2_mshr: MshrFile,
    dram: Dram,
    pf: StridePrefetcher,
    mem: SparseMem,
    reservations: Vec<Option<(u64, u64)>>,
    pending_cancels: Vec<(usize, Ticket)>,
    next_ticket: Ticket,
    stats: Counters,
    /// Optional Strictness-Order auditor (enabled by tests/harnesses).
    pub auditor: Option<OrderAuditor>,
}

impl MemorySystem {
    /// Builds the hierarchy for `n_cores` cores under `scheme`.
    pub fn new(scheme: Scheme, cfg: HierarchyConfig, n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        let gm = scheme.gm_config().unwrap_or(GhostMinionConfig {
            dminion: false,
            iminion: false,
            ..GhostMinionConfig::default()
        });
        let cores = (0..n_cores)
            .map(|_| PerCore {
                l1i: Cache::new(cfg.l1i),
                l1d: Cache::new(cfg.l1d),
                l1i_mshr: MshrFile::new(cfg.l1_mshrs),
                l1d_mshr: MshrFile::new(cfg.l1_mshrs),
                dminion: GhostMinionCache::new(gm.minion_bytes, gm.minion_ways, gm.timeguard),
                iminion: GhostMinionCache::new(gm.minion_bytes, gm.minion_ways, gm.timeguard),
                l0: Cache::new(CacheConfig {
                    size_bytes: cfg.l0_bytes,
                    ways: cfg.l0_ways,
                    latency: 1,
                }),
                noncoherent: FxHashSet::default(),
            })
            .collect();
        Self {
            scheme,
            cores,
            l2: Cache::new(cfg.l2),
            l2_mshr: MshrFile::new(cfg.l2_mshrs),
            dram: Dram::new(cfg.dram),
            pf: StridePrefetcher::new(cfg.prefetcher),
            mem: SparseMem::new(),
            reservations: vec![None; n_cores],
            pending_cancels: Vec::new(),
            next_ticket: 0,
            stats: Counters::new(),
            auditor: None,
            cfg,
        }
    }

    /// Whether *any* core has a leapfrog cancellation queued (§4.5) —
    /// the O(1) probe the wake-ordered scheduler checks once per
    /// processed cycle before running the per-core cancellation routing.
    pub fn any_cancellations_pending(&self) -> bool {
        !self.pending_cancels.is_empty()
    }

    /// The active scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Memory-side statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Data-minion counters of `core` (reads, hits, timeguards, fills,
    /// rejects, wipes, wiped lines).
    pub fn dminion_counters(&self, core: usize) -> (u64, u64, u64, u64, u64, u64, u64) {
        self.cores[core].dminion.counters()
    }

    /// DRAM row-buffer statistics.
    pub fn dram_row_stats(&self) -> (u64, u64, u64) {
        self.dram.row_stats()
    }

    fn fresh_ticket(&mut self) -> Ticket {
        self.next_ticket += 1;
        self.next_ticket
    }

    fn gm(&self) -> Option<GhostMinionConfig> {
        self.scheme.gm_config()
    }

    fn audit(&mut self, core: usize, src_ts: u64, dst_ts: u64, kind: FlowKind) {
        if let Some(a) = self.auditor.as_mut() {
            a.record_flow(Flow {
                core,
                src_ts,
                dst_ts,
                kind,
            });
        }
    }

    /// Walks the shared levels (L2, then DRAM) for `line`, starting the
    /// L2 access at `start`. Mutates L2 tags/MSHRs and DRAM state.
    /// Returns the data-arrival cycle, or `Err(retry_at)` if the L2 MSHRs
    /// are exhausted and cannot be leapfrogged.
    #[allow(clippy::too_many_arguments)]
    fn shared_walk(
        &mut self,
        line: u64,
        start: u64,
        now: u64,
        speculative: bool,
        fill_l2: bool,
        ts: u64,
        core: usize,
        ticket: Ticket,
        leapfrog: bool,
    ) -> Result<u64, u64> {
        let l2_lat = self.cfg.l2.latency;
        if self.l2.access(line).is_some() {
            self.stats.bump(id::l2_hits());
            return Ok(start + l2_lat);
        }
        self.l2_mshr.reclaim(now);
        if let Some((tok, e)) = self.l2_mshr.find(line) {
            if e.ts != SQUASHED_TS && (e.ts <= ts || !leapfrog) {
                self.audit(core, e.ts, ts, FlowKind::MshrCoalesce);
                return Ok(e.ready_at.max(start + l2_lat));
            }
            // Timeleap (§4.5): the in-flight miss belongs to a younger
            // (or squashed) instruction; restart it at this level so our
            // timing matches a fresh issue — a real DRAM access, not a
            // head start — and cancel-and-replay the younger load. Data
            // cannot arrive before the physical fill completes.
            self.stats.bump(id::timeleaps());
            if e.owner != NO_OWNER {
                self.pending_cancels.push((e.owner, e.payload));
            }
            let fresh = self
                .dram
                .access(line, start + l2_lat, speculative)
                .max(e.ready_at);
            self.l2_mshr.retime(tok, ts, core, ticket, fresh);
            return Ok(fresh);
        }
        if self.l2_mshr.free_at(now) == 0 {
            if leapfrog {
                if let Some((tok, victim)) = self.l2_mshr.youngest() {
                    if victim.ts > ts {
                        self.stats.bump(id::leapfrogs());
                        self.l2_mshr.steal(tok);
                        if victim.owner != NO_OWNER {
                            self.pending_cancels.push((victim.owner, victim.payload));
                        }
                        self.audit(core, ts, victim.ts, FlowKind::ResourceContention);
                    }
                }
            }
            if self.l2_mshr.free_at(now) == 0 {
                let at = self.l2_mshr.next_free_at().unwrap_or(now + 1).max(now + 1);
                return Err(at);
            }
        }
        self.stats.bump(id::dram_accesses());
        let done = self.dram.access(line, start + l2_lat, speculative);
        self.l2_mshr
            .alloc(line, done, ts, core, ticket, now)
            .expect("space ensured above");
        if fill_l2 {
            self.l2.fill(line, MesiState::Exclusive, 0);
        }
        Ok(done)
    }

    /// Trains the prefetcher and installs its prefetches into the L2.
    /// The RPT is PC-indexed; mixing the core id into the index keeps
    /// different cores' streams from aliasing the same entry (per-core
    /// prefetch streams, as hardware L2 prefetchers tag requestors).
    fn train_prefetcher_for(&mut self, core: usize, pc: u64, addr: u64) {
        for p in self.pf.train(pc ^ ((core as u64) << 48), addr) {
            if self.l2.probe(p).is_none() {
                self.stats.bump(id::prefetch_fills());
                self.l2.fill(p, MesiState::Exclusive, 0);
            }
        }
    }

    /// Finds another core holding `line` in Modified/Exclusive in a
    /// non-local structure (the §4.6 condition).
    fn remote_owner(&self, line: u64, me: usize) -> Option<usize> {
        self.cores.iter().enumerate().find_map(|(i, c)| {
            if i == me {
                return None;
            }
            let owned = c.l1d.probe(line).is_some_and(|m| m.state.is_writable());
            owned.then_some(i)
        })
    }

    /// Downgrades a remote Modified/Exclusive copy to Shared (writeback
    /// into the L2). Returns the added latency.
    fn downgrade_remote(&mut self, line: u64, owner: usize) -> u64 {
        self.cores[owner].l1d.set_state(line, MesiState::Shared);
        self.l2.fill(line, MesiState::Shared, 0);
        self.cfg.l2.latency
    }

    /// Data-load path for schemes whose speculative fills go straight
    /// into the L1/L2 (Unsafe, STT, and the data side of IMinion-only).
    fn load_unsafe(&mut self, req: &MemReq, ticket: Ticket) -> LoadResp {
        let line = line_addr(req.addr);
        let now = req.now;
        let lat = self.cfg.l1d.latency;
        self.stats.add_id(id::energy_l1d_reads(), 1);
        // In-flight misses first: the synchronous walk installs tags at
        // request time, so a pending MSHR entry — not a tag probe — is
        // the source of truth for data that has not yet arrived.
        self.cores[req.core].l1d_mshr.reclaim(now);
        if let Some((_, e)) = self.cores[req.core].l1d_mshr.find(line) {
            self.audit(req.core, e.ts, req.ts, FlowKind::MshrCoalesce);
            return LoadResp::Done {
                at: e.ready_at.max(now + lat),
                ticket,
                filled_locally: true,
            };
        }
        if self.cores[req.core].l1d.access(line).is_some() {
            self.stats.bump(id::l1d_hits());
            return LoadResp::Done {
                at: now + lat,
                ticket,
                filled_locally: true,
            };
        }
        if self.cores[req.core].l1d_mshr.free_at(now) == 0 {
            let at = self.cores[req.core]
                .l1d_mshr
                .next_free_at()
                .unwrap_or(now + 1)
                .max(now + 1);
            self.stats.bump(id::mshr_retries());
            return LoadResp::Retry { at };
        }
        // Coherence: a speculative load freely downgrades remote copies
        // (this is one of the channels GhostMinion's extension closes).
        let mut extra = 0;
        if let Some(owner) = self.remote_owner(line, req.core) {
            extra = self.downgrade_remote(line, owner);
        }
        let done = match self.shared_walk(
            line,
            now + lat + extra,
            now,
            req.speculative,
            true,
            req.ts,
            req.core,
            ticket,
            false,
        ) {
            Ok(t) => t,
            Err(at) => return LoadResp::Retry { at },
        };
        self.cores[req.core]
            .l1d_mshr
            .alloc(line, done, req.ts, req.core, ticket, now)
            .expect("space checked");
        self.stats.add_id(id::energy_l1d_writes(), 1);
        if let Some(ev) = self.cores[req.core].l1d.fill(line, MesiState::Exclusive, 0) {
            if ev.dirty {
                self.l2.fill(ev.addr, MesiState::Modified, 0);
            }
        }
        self.train_prefetcher_for(req.core, req.pc, req.addr);
        LoadResp::Done {
            at: done,
            ticket,
            filled_locally: true,
        }
    }

    /// Data-load path for GhostMinion (§4.2–§4.6).
    fn load_ghost(&mut self, req: &MemReq, ticket: Ticket, c: GhostMinionConfig) -> LoadResp {
        let line = line_addr(req.addr);
        let now = req.now;
        let lat = self.cfg.l1d.latency;
        self.stats.add_id(id::energy_l1d_reads(), 1);
        self.stats.add_id(id::energy_minion_reads(), 1);
        // In-flight misses first (see load_unsafe): coalesce or timeleap.
        self.cores[req.core].l1d_mshr.reclaim(now);
        if let Some((tok, e)) = self.cores[req.core].l1d_mshr.find(line) {
            if e.ts != SQUASHED_TS && (e.ts <= req.ts || !c.leapfrog) {
                self.audit(req.core, e.ts, req.ts, FlowKind::MshrCoalesce);
                // The arriving fill is (re)stamped with this live
                // requester's timestamp: safe under the fill rule, and it
                // keeps the line available for this load's commit even if
                // the original allocator was squashed and wiped.
                let filled = self.ghost_fill_minion(req.core, line, req.ts);
                return LoadResp::Done {
                    at: e.ready_at.max(now + lat),
                    ticket,
                    filled_locally: filled,
                };
            }
            // Timeleap (§4.5): the in-flight miss belongs to a younger
            // (or squashed) instruction; restart it with genuine
            // fresh-miss timing and cancel-and-replay the younger load.
            self.stats.bump(id::timeleaps());
            if e.owner != NO_OWNER {
                self.pending_cancels.push((e.owner, e.payload));
            }
            let walk = match self.shared_walk(
                line,
                now + lat,
                now,
                true,
                false,
                req.ts,
                req.core,
                ticket,
                c.leapfrog,
            ) {
                Ok(t) => t,
                Err(at) => return LoadResp::Retry { at },
            };
            let fresh = walk.max(e.ready_at);
            self.cores[req.core]
                .l1d_mshr
                .retime(tok, req.ts, req.core, ticket, fresh);
            let filled = self.ghost_fill_minion(req.core, line, req.ts);
            return LoadResp::Done {
                at: fresh,
                ticket,
                filled_locally: filled,
            };
        }
        // Minion probed in parallel with the L1 (§4.3): same latency.
        match self.cores[req.core].dminion.read(line, req.ts) {
            MinionRead::Hit { stamp } => {
                if stamp != req.ts {
                    self.audit(req.core, stamp, req.ts, FlowKind::CacheLineRead);
                }
                self.stats.bump(id::minion_hits());
                return LoadResp::Done {
                    at: now + lat,
                    ticket,
                    filled_locally: true,
                };
            }
            MinionRead::TimeGuarded => {
                self.stats.bump(id::timeguards());
            }
            MinionRead::Miss => {}
        }
        if self.cores[req.core].l1d.access(line).is_some() {
            self.stats.bump(id::l1d_hits());
            return LoadResp::Done {
                at: now + lat,
                ticket,
                filled_locally: true,
            };
        }
        if self.cores[req.core].l1d_mshr.free_at(now) == 0 {
            if c.leapfrog {
                if let Some((tok, victim)) = self.cores[req.core].l1d_mshr.youngest() {
                    if victim.ts > req.ts {
                        self.stats.bump(id::leapfrogs());
                        self.cores[req.core].l1d_mshr.steal(tok);
                        if victim.owner != NO_OWNER {
                            self.pending_cancels.push((victim.owner, victim.payload));
                        }
                    }
                }
            }
            if self.cores[req.core].l1d_mshr.free_at(now) == 0 {
                let at = self.cores[req.core]
                    .l1d_mshr
                    .next_free_at()
                    .unwrap_or(now + 1)
                    .max(now + 1);
                self.stats.bump(id::mshr_retries());
                return LoadResp::Retry { at };
            }
        }
        // Coherence (§4.6): a speculative load must not alter remote
        // state. If a remote core owns the line Modified/Exclusive, take
        // a non-coherent copy and replay at commit.
        let mut extra = 0;
        if let Some(owner) = self.remote_owner(line, req.core) {
            if c.coherence {
                self.stats.bump(id::noncoherent_forwards());
                self.cores[req.core].noncoherent.insert(line);
            } else {
                extra = self.downgrade_remote(line, owner);
            }
        }
        // Speculative misses never fill the L2 (§4.2: the non-speculative
        // hierarchy sees no speculative state changes).
        let done = match self.shared_walk(
            line,
            now + lat + extra,
            now,
            true,
            false,
            req.ts,
            req.core,
            ticket,
            c.leapfrog,
        ) {
            Ok(t) => t,
            Err(at) => return LoadResp::Retry { at },
        };
        self.cores[req.core]
            .l1d_mshr
            .alloc(line, done, req.ts, req.core, ticket, now)
            .expect("space ensured");
        // Prefetcher: without the §4.7 gate, training happens here on the
        // speculative stream (the leaky default the gate removes).
        if !c.prefetch_gate {
            self.train_prefetcher_for(req.core, req.pc, req.addr);
        }
        let filled = self.ghost_fill_minion(req.core, line, req.ts);
        LoadResp::Done {
            at: done,
            ticket,
            filled_locally: filled,
        }
    }

    fn ghost_fill_minion(&mut self, core: usize, line: u64, ts: u64) -> bool {
        self.stats.add_id(id::energy_minion_writes(), 1);
        match self.cores[core].dminion.fill(line, ts) {
            MinionFill::Filled => true,
            MinionFill::Rejected => {
                self.stats.bump(id::fill_rejects());
                false
            }
        }
    }

    /// Data-load path for MuonTrap: L0 filter cache in front of the L1.
    fn load_muontrap(&mut self, req: &MemReq, ticket: Ticket) -> LoadResp {
        let line = line_addr(req.addr);
        let now = req.now;
        // Serial L0 access: +1 cycle before the L1 on L0 miss.
        let l0_lat = 1;
        self.cores[req.core].l1d_mshr.reclaim(now);
        if let Some((tok, e)) = self.cores[req.core].l1d_mshr.find(line) {
            if e.ts != SQUASHED_TS {
                return LoadResp::Done {
                    at: e.ready_at.max(now + self.cfg.l1d.latency + l0_lat),
                    ticket,
                    filled_locally: true,
                };
            }
            let walk = match self.shared_walk(
                line,
                now + self.cfg.l1d.latency + l0_lat,
                now,
                true,
                false,
                req.ts,
                req.core,
                ticket,
                false,
            ) {
                Ok(t) => t,
                Err(at) => return LoadResp::Retry { at },
            };
            let fresh = walk.max(e.ready_at);
            self.cores[req.core]
                .l1d_mshr
                .retime(tok, req.ts, req.core, ticket, fresh);
            return LoadResp::Done {
                at: fresh,
                ticket,
                filled_locally: true,
            };
        }
        if self.cores[req.core].l0.access(line).is_some() {
            self.stats.bump(id::l0_hits());
            return LoadResp::Done {
                at: now + l0_lat,
                ticket,
                filled_locally: true,
            };
        }
        let lat = self.cfg.l1d.latency + l0_lat;
        self.stats.add_id(id::energy_l1d_reads(), 1);
        if self.cores[req.core].l1d.access(line).is_some() {
            self.stats.bump(id::l1d_hits());
            return LoadResp::Done {
                at: now + lat,
                ticket,
                filled_locally: true,
            };
        }
        if self.cores[req.core].l1d_mshr.free_at(now) == 0 {
            let at = self.cores[req.core]
                .l1d_mshr
                .next_free_at()
                .unwrap_or(now + 1)
                .max(now + 1);
            self.stats.bump(id::mshr_retries());
            return LoadResp::Retry { at };
        }
        if let Some(_owner) = self.remote_owner(line, req.core) {
            // MuonTrap's non-coherent forwarding (the technique
            // GhostMinion §4.6 reuses).
            self.stats.bump(id::noncoherent_forwards());
            self.cores[req.core].noncoherent.insert(line);
        }
        let done = match self.shared_walk(
            line,
            now + lat,
            now,
            true,
            false,
            req.ts,
            req.core,
            ticket,
            false,
        ) {
            Ok(t) => t,
            Err(at) => return LoadResp::Retry { at },
        };
        self.cores[req.core]
            .l1d_mshr
            .alloc(line, done, req.ts, req.core, ticket, now)
            .expect("space checked");
        self.cores[req.core].l0.fill(line, MesiState::Shared, 0);
        LoadResp::Done {
            at: done,
            ticket,
            filled_locally: true,
        }
    }

    /// Data-load path for InvisiSpec: no speculative fill anywhere.
    fn load_invisispec(&mut self, req: &MemReq, ticket: Ticket) -> LoadResp {
        let line = line_addr(req.addr);
        let now = req.now;
        let lat = self.cfg.l1d.latency;
        self.stats.add_id(id::energy_l1d_reads(), 1);
        self.cores[req.core].l1d_mshr.reclaim(now);
        if let Some((tok, e)) = self.cores[req.core].l1d_mshr.find(line) {
            if e.ts != SQUASHED_TS {
                return LoadResp::Done {
                    at: e.ready_at.max(now + lat),
                    ticket,
                    filled_locally: true,
                };
            }
            // The in-flight miss belongs to a squashed load: this access
            // must observe genuine fresh-miss timing.
            let walk = match self.shared_walk(
                line,
                now + lat,
                now,
                true,
                false,
                req.ts,
                req.core,
                ticket,
                false,
            ) {
                Ok(t) => t,
                Err(at) => return LoadResp::Retry { at },
            };
            let fresh = walk.max(e.ready_at);
            self.cores[req.core]
                .l1d_mshr
                .retime(tok, req.ts, req.core, ticket, fresh);
            return LoadResp::Done {
                at: fresh,
                ticket,
                filled_locally: true,
            };
        }
        if self.cores[req.core].l1d.access(line).is_some() {
            self.stats.bump(id::l1d_hits());
            return LoadResp::Done {
                at: now + lat,
                ticket,
                filled_locally: true,
            };
        }
        if self.cores[req.core].l1d_mshr.free_at(now) == 0 {
            let at = self.cores[req.core]
                .l1d_mshr
                .next_free_at()
                .unwrap_or(now + 1)
                .max(now + 1);
            self.stats.bump(id::mshr_retries());
            return LoadResp::Retry { at };
        }
        if self.remote_owner(line, req.core).is_some() {
            self.stats.bump(id::noncoherent_forwards());
            self.cores[req.core].noncoherent.insert(line);
        }
        let done = match self.shared_walk(
            line,
            now + lat,
            now,
            true,
            false,
            req.ts,
            req.core,
            ticket,
            false,
        ) {
            Ok(t) => t,
            Err(at) => return LoadResp::Retry { at },
        };
        self.cores[req.core]
            .l1d_mshr
            .alloc(line, done, req.ts, req.core, ticket, now)
            .expect("space checked");
        // The data lives only in the load's own buffer entry.
        LoadResp::Done {
            at: done,
            ticket,
            filled_locally: true,
        }
    }

    /// Fills the committed line into L1 (and L2), handling the dirty
    /// eviction.
    fn fill_l1d_committed(&mut self, core: usize, line: u64) {
        self.stats.add_id(id::energy_l1d_writes(), 1);
        if let Some(ev) = self.cores[core].l1d.fill(line, MesiState::Exclusive, 0) {
            if ev.dirty {
                self.l2.fill(ev.addr, MesiState::Modified, 0);
            }
        }
        self.l2.fill(line, MesiState::Exclusive, 0);
    }
}

impl MemoryBackend for MemorySystem {
    fn load(&mut self, req: &MemReq) -> LoadResp {
        self.stats.bump(id::loads());
        let ticket = self.fresh_ticket();
        match self.scheme.kind {
            SchemeKind::Unsafe | SchemeKind::Stt { .. } => self.load_unsafe(req, ticket),
            SchemeKind::GhostMinion(c) => {
                if c.dminion {
                    self.load_ghost(req, ticket, c)
                } else {
                    self.load_unsafe(req, ticket)
                }
            }
            SchemeKind::MuonTrap { .. } => self.load_muontrap(req, ticket),
            SchemeKind::InvisiSpec { .. } => self.load_invisispec(req, ticket),
        }
    }

    fn commit_load(&mut self, req: &MemReq) -> u64 {
        let line = line_addr(req.addr);
        let now = req.now;
        if let Some(a) = self.auditor.as_mut() {
            a.settle_commit(req.core, req.ts);
        }
        match self.scheme.kind {
            SchemeKind::Unsafe | SchemeKind::Stt { .. } => now,
            SchemeKind::GhostMinion(c) if c.dminion => {
                let mut ready = now;
                if c.coherence && self.cores[req.core].noncoherent.remove(&line) {
                    // §4.6: the load used a non-coherent copy; replay it
                    // non-speculatively before committing.
                    self.stats.bump(id::coherence_replays());
                    if let Some(owner) = self.remote_owner(line, req.core) {
                        self.downgrade_remote(line, owner);
                    }
                    ready = now + self.cfg.replay_latency;
                }
                self.stats.add_id(id::energy_minion_reads(), 1);
                if self.cores[req.core].dminion.take_for_commit(line, req.ts) {
                    self.stats.bump(id::commit_moves());
                    self.fill_l1d_committed(req.core, line);
                    if c.prefetch_gate {
                        // §4.7: non-speculative prefetcher training.
                        self.train_prefetcher_for(req.core, req.pc, req.addr);
                    }
                } else if self.cores[req.core].l1d.probe(line).is_none() {
                    // The line was rejected or displaced before commit
                    // (§6.4): it reaches no non-speculative cache. The
                    // §4.7 prefetcher notification is still sent — it is
                    // keyed on the committing load, not on whether the
                    // line survived in the minion (training gaps would
                    // break stride detection on streams).
                    if c.prefetch_gate {
                        self.train_prefetcher_for(req.core, req.pc, req.addr);
                    }
                    self.stats.bump(id::lost_at_commit());
                    if c.async_reload {
                        // §6.4: asynchronously reload lines lost before
                        // commit. The reload uses idle memory bandwidth
                        // (it is off every critical path), so it installs
                        // the line without charging demand-visible DRAM
                        // or bus time.
                        self.stats.bump(id::async_reloads());
                        self.fill_l1d_committed(req.core, line);
                    }
                }
                ready
            }
            SchemeKind::GhostMinion(_) => now,
            SchemeKind::MuonTrap { .. } => {
                let mut ready = now;
                if self.cores[req.core].noncoherent.remove(&line) {
                    self.stats.bump(id::coherence_replays());
                    if let Some(owner) = self.remote_owner(line, req.core) {
                        self.downgrade_remote(line, owner);
                    }
                    ready = now + self.cfg.replay_latency;
                }
                if self.cores[req.core].l0.probe(line).is_some()
                    && self.cores[req.core].l1d.probe(line).is_none()
                {
                    self.stats.bump(id::commit_moves());
                    self.fill_l1d_committed(req.core, line);
                    self.train_prefetcher_for(req.core, req.pc, req.addr);
                }
                ready
            }
            SchemeKind::InvisiSpec { future } => {
                // Exposure/validation: make the line architecturally
                // visible now that the load is safe.
                self.cores[req.core].noncoherent.remove(&line);
                if self.cores[req.core].l1d.probe(line).is_some() {
                    return if future {
                        now + self.cfg.l1d.latency
                    } else {
                        now
                    };
                }
                self.stats.bump(id::exposures());
                let t = self.fresh_ticket();
                let done = self
                    .shared_walk(
                        line,
                        now + self.cfg.l1d.latency,
                        now,
                        false,
                        true,
                        0,
                        NO_OWNER,
                        t,
                        false,
                    )
                    .unwrap_or(now + self.cfg.replay_latency);
                self.fill_l1d_committed(req.core, line);
                self.train_prefetcher_for(req.core, req.pc, req.addr);
                if future {
                    // Blocking validation (the -Future cost the paper
                    // highlights).
                    done
                } else {
                    // -Spectre: exposure is off the critical path.
                    now
                }
            }
        }
    }

    fn store_commit(&mut self, req: &MemReq, value: u64) {
        self.stats.bump(id::stores());
        let line = line_addr(req.addr);
        let now = req.now;
        self.mem.write(req.addr, value, req.size);
        // Coherence: invalidate every other copy and reservation.
        for i in 0..self.cores.len() {
            if i == req.core {
                continue;
            }
            if self.reservations[i].is_some_and(|(l, _)| l == line) {
                self.reservations[i] = None;
            }
            self.cores[i].l1d.invalidate(line);
            self.cores[i].l0.invalidate(line);
            self.cores[i].dminion.invalidate(line);
            self.cores[i].noncoherent.remove(&line);
        }
        self.stats.add_id(id::energy_l1d_writes(), 1);
        if self.cores[req.core].l1d.probe(line).is_some() {
            self.cores[req.core].l1d.mark_dirty(line);
            return;
        }
        // Write-allocate, non-speculative (never leapfrogged: ts 0).
        let t = self.fresh_ticket();
        let done = self
            .shared_walk(
                line,
                now + self.cfg.l1d.latency,
                now,
                false,
                true,
                0,
                NO_OWNER,
                t,
                false,
            )
            .unwrap_or(now + self.cfg.replay_latency);
        self.cores[req.core]
            .l1d_mshr
            .alloc(line, done, 0, NO_OWNER, 0, now);
        if let Some(ev) = self.cores[req.core].l1d.fill(line, MesiState::Modified, 0) {
            if ev.dirty {
                self.l2.fill(ev.addr, MesiState::Modified, 0);
            }
        }
        self.cores[req.core].l1d.mark_dirty(line);
    }

    fn ifetch(&mut self, req: &MemReq) -> LoadResp {
        self.stats.bump(id::ifetches());
        let ticket = self.fresh_ticket();
        let line = line_addr(req.addr);
        let now = req.now;
        let lat = self.cfg.l1i.latency;
        let use_iminion = self.gm().is_some_and(|c| c.iminion);
        self.cores[req.core].l1i_mshr.reclaim(now);
        if let Some((tok, e)) = self.cores[req.core].l1i_mshr.find(line) {
            if e.ts != SQUASHED_TS || !use_iminion {
                return LoadResp::Done {
                    at: e.ready_at.max(now + lat),
                    ticket,
                    filled_locally: true,
                };
            }
            let walk = match self.shared_walk(
                line,
                now + lat,
                now,
                true,
                true,
                req.ts,
                req.core,
                ticket,
                false,
            ) {
                Ok(t) => t,
                Err(at) => return LoadResp::Retry { at },
            };
            let fresh = walk.max(e.ready_at);
            self.cores[req.core]
                .l1i_mshr
                .retime(tok, req.ts, req.core, ticket, fresh);
            return LoadResp::Done {
                at: fresh,
                ticket,
                filled_locally: true,
            };
        }
        if use_iminion {
            self.stats.add_id(id::energy_iminion_reads(), 1);
            if let MinionRead::Hit { .. } = self.cores[req.core].iminion.read(line, req.ts) {
                self.stats.bump(id::iminion_hits());
                return LoadResp::Done {
                    at: now + lat,
                    ticket,
                    filled_locally: true,
                };
            }
        }
        self.stats.add_id(id::energy_l1i_reads(), 1);
        if self.cores[req.core].l1i.access(line).is_some() {
            self.stats.bump(id::l1i_hits());
            return LoadResp::Done {
                at: now + lat,
                ticket,
                filled_locally: true,
            };
        }
        if self.cores[req.core].l1i_mshr.free_at(now) == 0 {
            let at = self.cores[req.core]
                .l1i_mshr
                .next_free_at()
                .unwrap_or(now + 1)
                .max(now + 1);
            return LoadResp::Retry { at };
        }
        let leapfrog = self.gm().is_some_and(|c| c.leapfrog && c.iminion);
        // Instruction misses allocate in the shared L2 even when an
        // IMinion is present: the paper protects the L1-level structure
        // (§4.8) and reports ~zero IMinion overhead (Fig. 9), which is
        // only achievable if wiped wrong-path lines refetch from the L2
        // rather than DRAM. The residual L2-presence channel for
        // instructions is out of the paper's evaluation scope.
        let done = match self.shared_walk(
            line,
            now + lat,
            now,
            true,
            true,
            req.ts,
            req.core,
            ticket,
            leapfrog,
        ) {
            Ok(t) => t,
            Err(at) => return LoadResp::Retry { at },
        };
        self.cores[req.core]
            .l1i_mshr
            .alloc(line, done, req.ts, req.core, ticket, now);
        if use_iminion {
            self.stats.add_id(id::energy_iminion_writes(), 1);
            self.cores[req.core].iminion.fill(line, req.ts);
        } else {
            self.cores[req.core].l1i.fill(line, MesiState::Shared, 0);
        }
        LoadResp::Done {
            at: done,
            ticket,
            filled_locally: true,
        }
    }

    fn commit_ifetch(&mut self, core: usize, line: u64, _now: u64) {
        if self.gm().is_some_and(|c| c.iminion)
            && self.cores[core].iminion.take_for_commit(line, u64::MAX)
        {
            self.stats.bump(id::iminion_commit_moves());
            self.cores[core].l1i.fill(line, MesiState::Shared, 0);
            self.l2.fill(line, MesiState::Shared, 0);
        }
    }

    fn squash(&mut self, core: usize, above_ts: u64, max_ts: u64, now: u64) {
        self.stats.bump(id::squashes());
        if let Some(a) = self.auditor.as_mut() {
            a.settle_squash(core, above_ts, max_ts);
        }
        let orphan_mshrs = matches!(
            self.scheme.kind,
            SchemeKind::GhostMinion(_)
                | SchemeKind::MuonTrap { flush: true }
                | SchemeKind::InvisiSpec { .. }
        );
        if orphan_mshrs {
            // Footnote 2's wipe extends to fills still in flight: their
            // MSHR slots stay occupied (the access cannot be aborted),
            // but they no longer carry a live timestamp, so later
            // requests observe fresh-miss timing instead of inheriting
            // the squashed load's head start.
            self.cores[core]
                .l1d_mshr
                .retag_above(above_ts, core, SQUASHED_TS);
            self.cores[core]
                .l1i_mshr
                .retag_above(above_ts, core, SQUASHED_TS);
            self.l2_mshr.retag_above(above_ts, core, SQUASHED_TS);
        }
        match self.scheme.kind {
            SchemeKind::GhostMinion(c) => {
                // §4.2: single-cycle parallel wipe above the squash point
                // (footnote 2: not a full clear), with no cycle charged —
                // timing-invariant regardless of lines wiped.
                if c.dminion {
                    self.cores[core].dminion.wipe_above(above_ts);
                }
                if c.iminion {
                    self.cores[core].iminion.wipe_above(above_ts);
                }
            }
            SchemeKind::MuonTrap { flush: true } => {
                self.cores[core].l0.invalidate_all();
            }
            _ => {}
        }
        let _ = now;
    }

    fn take_cancellations(&mut self, core: usize) -> Vec<Ticket> {
        if self.pending_cancels.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.pending_cancels.retain(|&(c, t)| {
            if c == core {
                out.push(t);
                false
            } else {
                true
            }
        });
        out
    }

    fn cancellations_pending(&self, core: usize) -> bool {
        self.pending_cancels.iter().any(|&(c, _)| c == core)
    }

    fn read_value(&self, addr: u64, size: u64) -> u64 {
        self.mem.read(addr, size)
    }

    fn write_value(&mut self, addr: u64, value: u64, size: u64) {
        self.mem.write(addr, value, size);
    }

    fn write_bytes(&mut self, base: u64, bytes: &[u8]) {
        self.mem.write_bytes(base, bytes);
    }

    fn write_bytes_shared(&mut self, base: u64, bytes: &std::sync::Arc<[u8]>) {
        self.mem.write_bytes_shared(base, bytes);
    }

    fn ll_reserve(&mut self, core: usize, addr: u64, ts: u64) {
        // Same-line re-arms keep the oldest LL's sequence: a speculative
        // LL from a later loop iteration must neither revive a reservation
        // a remote store cleared (seq check in sc_try) nor destroy the
        // pairing of an older LL with its SC (min here).
        let line = line_addr(addr);
        self.reservations[core] = match self.reservations[core] {
            Some((l, s)) if l == line => Some((line, s.min(ts))),
            _ => Some((line, ts)),
        };
    }

    fn sc_try(&mut self, core: usize, addr: u64, ts: u64) -> bool {
        let ok =
            self.reservations[core].is_some_and(|(l, ll_ts)| l == line_addr(addr) && ll_ts < ts);
        self.reservations[core] = None;
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::AccessKind;

    fn req(core: usize, addr: u64, ts: u64, now: u64) -> MemReq {
        MemReq {
            core,
            addr,
            size: 8,
            ts,
            pc: 0x100,
            now,
            speculative: true,
            kind: AccessKind::Load,
        }
    }

    fn ghost_sys() -> MemorySystem {
        MemorySystem::new(Scheme::ghost_minion(), HierarchyConfig::tiny(), 2)
    }

    fn unsafe_sys() -> MemorySystem {
        MemorySystem::new(Scheme::unsafe_baseline(), HierarchyConfig::tiny(), 2)
    }

    fn done_at(r: LoadResp) -> u64 {
        r.done_at().expect("expected Done")
    }

    #[test]
    fn unsafe_load_fills_l1_and_l2() {
        let mut m = unsafe_sys();
        let t1 = done_at(m.load(&req(0, 0x1000, 5, 0)));
        assert!(t1 > 20, "first access reaches DRAM");
        // Second access to the same line hits the L1.
        let t2 = done_at(m.load(&req(0, 0x1008, 6, t1)));
        assert_eq!(t2, t1 + m.cfg.l1d.latency);
        assert_eq!(m.stats().get("l1d_hits"), 1);
        assert!(m.l2.probe(0x1000).is_some(), "L2 filled speculatively");
    }

    #[test]
    fn ghost_speculative_fill_stays_out_of_nonspeculative_hierarchy() {
        let mut m = ghost_sys();
        let t1 = done_at(m.load(&req(0, 0x1000, 5, 0)));
        assert!(m.l2.probe(0x1000).is_none(), "no speculative L2 fill");
        assert!(
            m.cores[0].l1d.probe(0x1000).is_none(),
            "no speculative L1 fill"
        );
        // But the minion holds it: same-or-newer timestamp hits.
        let t2 = done_at(m.load(&req(0, 0x1000, 6, t1)));
        assert_eq!(t2, t1 + m.cfg.l1d.latency);
        assert_eq!(m.stats().get("minion_hits"), 1);
    }

    #[test]
    fn ghost_timeguard_blocks_backwards_read() {
        let mut m = ghost_sys();
        let t1 = done_at(m.load(&req(0, 0x1000, 10, 0)));
        // An older instruction (ts 5) must observe a miss.
        let r = m.load(&req(0, 0x1000, 5, t1));
        let t2 = done_at(r);
        assert!(t2 > t1 + m.cfg.l1d.latency, "older ts must re-miss");
        assert_eq!(m.stats().get("timeguards"), 1);
    }

    #[test]
    fn ghost_commit_moves_line_to_l1() {
        let mut m = ghost_sys();
        let t1 = done_at(m.load(&req(0, 0x1000, 5, 0)));
        let mut creq = req(0, 0x1000, 5, t1);
        creq.speculative = false;
        let ready = m.commit_load(&creq);
        assert_eq!(ready, t1, "commit path off the critical path");
        assert!(m.cores[0].l1d.probe(0x1000).is_some(), "promoted to L1");
        assert_eq!(m.cores[0].dminion.resident(), 0, "free-slotted out");
        assert_eq!(m.stats().get("commit_moves"), 1);
    }

    #[test]
    fn ghost_squash_wipes_only_above() {
        let mut m = ghost_sys();
        done_at(m.load(&req(0, 0x1000, 5, 0)));
        done_at(m.load(&req(0, 0x2000, 15, 200)));
        m.squash(0, 10, 20, 400);
        // ts-5 line survives; ts-15 line is gone.
        assert!(m.cores[0].dminion.probe_stamp(0x1000).is_some());
        assert!(m.cores[0].dminion.probe_stamp(0x2000).is_none());
    }

    #[test]
    fn leapfrog_steals_youngest_mshr_and_cancels() {
        let mut m = ghost_sys();
        // Tiny config: 2 L1D MSHRs. Fill them with young timestamps.
        done_at(m.load(&req(0, 0x10000, 50, 0)));
        done_at(m.load(&req(0, 0x20000, 60, 0)));
        // Older request arrives with both MSHRs busy: leapfrogs ts 60.
        let r = m.load(&req(0, 0x30000, 10, 1));
        assert!(matches!(r, LoadResp::Done { .. }), "leapfrog must succeed");
        assert_eq!(m.stats().get("leapfrogs"), 1);
        let cancelled = m.take_cancellations(0);
        assert_eq!(cancelled.len(), 1, "victim load must be cancelled");
    }

    #[test]
    fn no_leapfrog_for_youngest_request() {
        let mut m = ghost_sys();
        done_at(m.load(&req(0, 0x10000, 50, 0)));
        done_at(m.load(&req(0, 0x20000, 60, 0)));
        // A *younger* request must not steal; it retries.
        let r = m.load(&req(0, 0x30000, 70, 1));
        assert!(matches!(r, LoadResp::Retry { .. }));
        assert_eq!(m.stats().get("leapfrogs"), 0);
    }

    #[test]
    fn timeleap_on_inflight_younger_miss() {
        let mut m = ghost_sys();
        let t_young = done_at(m.load(&req(0, 0x40000, 90, 0)));
        // An older instruction wants the same line while in flight.
        let r = m.load(&req(0, 0x40000, 20, 5));
        let t_old = done_at(r);
        // Timeleaps may cascade through multiple cache levels (§4.5).
        assert!(m.stats().get("timeleaps") >= 1);
        assert!(
            t_old >= t_young,
            "restart semantics: data cannot arrive earlier than the fill"
        );
        assert!(!m.take_cancellations(0).is_empty(), "younger load replays");
    }

    #[test]
    fn unsafe_coalesces_without_timeleap() {
        let mut m = unsafe_sys();
        let t_young = done_at(m.load(&req(0, 0x40000, 90, 0)));
        // Older request to the in-flight line coalesces — no timeleap, no
        // cancellation, data no earlier than the original fill.
        let r = m.load(&req(0, 0x40000, 20, 5));
        assert_eq!(done_at(r), t_young.max(5 + m.cfg.l1d.latency));
        assert_eq!(m.stats().get("timeleaps"), 0);
        assert!(m.take_cancellations(0).is_empty());
    }

    #[test]
    fn muontrap_l0_hit_is_fast_but_l1_pays_serial_penalty() {
        let mut m = MemorySystem::new(Scheme::muontrap(), HierarchyConfig::tiny(), 1);
        let t1 = done_at(m.load(&req(0, 0x1000, 5, 0)));
        // L0 hit: 1 cycle.
        let t2 = done_at(m.load(&req(0, 0x1000, 6, t1)));
        assert_eq!(t2, t1 + 1);
        // Promote to L1 at commit, then flush L0: next access pays L1+1.
        let mut creq = req(0, 0x1000, 5, t2);
        creq.speculative = false;
        m.commit_load(&creq);
        m.cores[0].l0.invalidate_all();
        let t3 = done_at(m.load(&req(0, 0x1000, 7, t2 + 10)));
        assert_eq!(t3, t2 + 10 + m.cfg.l1d.latency + 1, "serial L0 penalty");
    }

    #[test]
    fn muontrap_flush_wipes_l0_but_base_does_not() {
        let mut base = MemorySystem::new(Scheme::muontrap(), HierarchyConfig::tiny(), 1);
        let mut flush = MemorySystem::new(Scheme::muontrap_flush(), HierarchyConfig::tiny(), 1);
        for m in [&mut base, &mut flush] {
            done_at(m.load(&req(0, 0x1000, 5, 0)));
            m.squash(0, 0, 10, 100);
        }
        assert!(base.cores[0].l0.probe(0x1000).is_some(), "base keeps data");
        assert!(flush.cores[0].l0.probe(0x1000).is_none(), "flush wipes");
    }

    #[test]
    fn invisispec_never_fills_speculatively_and_future_blocks_commit() {
        let mut m = MemorySystem::new(Scheme::invisispec_future(), HierarchyConfig::tiny(), 1);
        let t1 = done_at(m.load(&req(0, 0x1000, 5, 0)));
        assert!(m.cores[0].l1d.probe(0x1000).is_none());
        assert!(m.l2.probe(0x1000).is_none());
        // Re-access: still a full miss (nothing cached).
        let t2 = done_at(m.load(&req(0, 0x1000, 6, t1)));
        assert!(t2 > t1 + m.cfg.l1d.latency);
        // Commit validation blocks.
        let mut creq = req(0, 0x1000, 5, t2);
        creq.speculative = false;
        let ready = m.commit_load(&creq);
        assert!(ready > t2, "-Future validation stalls commit");
        assert!(m.cores[0].l1d.probe(0x1000).is_some(), "exposed at commit");
    }

    #[test]
    fn invisispec_spectre_exposure_is_nonblocking() {
        let mut m = MemorySystem::new(Scheme::invisispec_spectre(), HierarchyConfig::tiny(), 1);
        let t1 = done_at(m.load(&req(0, 0x1000, 5, 0)));
        let mut creq = req(0, 0x1000, 5, t1);
        creq.speculative = false;
        assert_eq!(m.commit_load(&creq), t1, "exposure off critical path");
        assert!(m.cores[0].l1d.probe(0x1000).is_some());
    }

    #[test]
    fn stores_invalidate_remote_copies_and_reservations() {
        let mut m = unsafe_sys();
        done_at(m.load(&req(1, 0x1000, 5, 0)));
        assert!(m.cores[1].l1d.probe(0x1000).is_some());
        m.ll_reserve(1, 0x1000, 3);
        let mut sreq = req(0, 0x1000, 9, 100);
        sreq.speculative = false;
        sreq.kind = AccessKind::Store;
        m.store_commit(&sreq, 0xbeef);
        assert!(m.cores[1].l1d.probe(0x1000).is_none(), "remote invalidated");
        assert!(
            !m.sc_try(1, 0x1000, 9),
            "reservation cleared by remote store"
        );
        assert_eq!(m.read_value(0x1000, 8), 0xbeef);
    }

    #[test]
    fn ghost_coherence_defers_remote_downgrade_to_commit() {
        let mut m = ghost_sys();
        // Core 1 owns the line Modified.
        let mut sreq = req(1, 0x1000, 1, 0);
        sreq.speculative = false;
        sreq.kind = AccessKind::Store;
        m.store_commit(&sreq, 7);
        assert!(m.cores[1].l1d.probe(0x1000).unwrap().state.is_writable());
        // Core 0 speculatively loads: remote state must not change.
        let t = done_at(m.load(&req(0, 0x1000, 5, 50)));
        assert!(
            m.cores[1].l1d.probe(0x1000).unwrap().state.is_writable(),
            "speculative load must not downgrade remote M"
        );
        assert_eq!(m.stats().get("noncoherent_forwards"), 1);
        // At commit the load replays and the downgrade happens.
        let mut creq = req(0, 0x1000, 5, t);
        creq.speculative = false;
        let ready = m.commit_load(&creq);
        assert!(ready > t, "coherence replay stalls commit");
        assert_eq!(
            m.cores[1].l1d.probe(0x1000).unwrap().state,
            MesiState::Shared
        );
    }

    #[test]
    fn unsafe_load_downgrades_remote_immediately() {
        let mut m = unsafe_sys();
        let mut sreq = req(1, 0x1000, 1, 0);
        sreq.speculative = false;
        sreq.kind = AccessKind::Store;
        m.store_commit(&sreq, 7);
        done_at(m.load(&req(0, 0x1000, 5, 50)));
        assert_eq!(
            m.cores[1].l1d.probe(0x1000).unwrap().state,
            MesiState::Shared,
            "unsafe speculation leaks through coherence"
        );
    }

    #[test]
    fn ll_sc_round_trip_and_local_reuse() {
        let mut m = unsafe_sys();
        m.ll_reserve(0, 0x2000, 5);
        assert!(m.sc_try(0, 0x2000, 9), "older LL arms a younger SC");
        assert!(!m.sc_try(0, 0x2000, 10), "reservation consumed");
        // A reservation from a *younger* (speculative) LL must not arm an
        // older SC.
        m.ll_reserve(0, 0x2000, 20);
        assert!(!m.sc_try(0, 0x2000, 15));
    }

    #[test]
    fn lost_line_counted_and_async_reload_recovers() {
        let mut cfg = GhostMinionConfig {
            // One-set minion so rejects are easy to force.
            minion_bytes: 128,
            minion_ways: 2,
            ..GhostMinionConfig::default()
        };
        let mut m = MemorySystem::new(Scheme::ghost_minion_with(cfg), HierarchyConfig::tiny(), 1);
        // Fill both ways with old stamps, then lose a newer line.
        done_at(m.load(&req(0, 0x10000, 5, 0)));
        done_at(m.load(&req(0, 0x20000, 6, 0)));
        // After the MSHRs drain, a newer load finds no eligible slot.
        done_at(m.load(&req(0, 0x30000, 20, 500)));
        assert_eq!(m.stats().get("fill_rejects"), 1);
        let mut creq = req(0, 0x30000, 20, 1000);
        creq.speculative = false;
        m.commit_load(&creq);
        assert_eq!(m.stats().get("lost_at_commit"), 1);
        assert!(m.cores[0].l1d.probe(0x30000).is_none());

        // With async reload the line lands in the L1 anyway.
        cfg.async_reload = true;
        let mut m2 = MemorySystem::new(Scheme::ghost_minion_with(cfg), HierarchyConfig::tiny(), 1);
        done_at(m2.load(&req(0, 0x10000, 5, 0)));
        done_at(m2.load(&req(0, 0x20000, 6, 0)));
        done_at(m2.load(&req(0, 0x30000, 20, 500)));
        let mut creq = req(0, 0x30000, 20, 1000);
        creq.speculative = false;
        m2.commit_load(&creq);
        assert_eq!(m2.stats().get("async_reloads"), 1);
        assert!(m2.cores[0].l1d.probe(0x30000).is_some());
    }

    #[test]
    fn iminion_guards_and_promotes_instruction_lines() {
        let mut m = ghost_sys();
        let mut ireq = req(0, gm_isa::ITEXT_BASE, 5, 0);
        ireq.kind = AccessKind::Ifetch;
        let t1 = done_at(m.ifetch(&ireq));
        assert!(m.cores[0].l1i.probe(gm_isa::ITEXT_BASE).is_none());
        // Commit promotes to L1I.
        m.commit_ifetch(0, gm_isa::ITEXT_BASE, t1);
        assert!(m.cores[0].l1i.probe(gm_isa::ITEXT_BASE).is_some());
        assert_eq!(m.stats().get("iminion_commit_moves"), 1);
    }

    #[test]
    fn auditor_records_and_flags_backwards_flow_on_unsafe() {
        let mut m = unsafe_sys();
        m.auditor = Some(OrderAuditor::new());
        // Younger inst (ts 30) brings a line in...
        let t1 = done_at(m.load(&req(0, 0x5000, 30, 0)));
        // ...then is squashed...
        m.squash(0, 10, 40, t1);
        // ...but the line persists, and an older inst (ts 8) coalesces/hits.
        done_at(m.load(&req(0, 0x5008, 8, t1 + 1)));
        let mut creq = req(0, 0x5008, 8, t1 + 50);
        creq.speculative = false;
        m.commit_load(&creq);
        // The hit was an L1 hit (no flow recorded there under unsafe);
        // but the auditor must at least have settled fates without
        // violations from legitimate flows.
        let a = m.auditor.as_ref().unwrap();
        let _ = a.violations();
    }

    #[test]
    fn ghost_minion_reads_record_no_backward_flows() {
        let mut m = ghost_sys();
        m.auditor = Some(OrderAuditor::new());
        let t1 = done_at(m.load(&req(0, 0x5000, 30, 0)));
        m.squash(0, 10, 40, t1);
        let t2 = done_at(m.load(&req(0, 0x5000, 8, t1 + 1)));
        let mut creq = req(0, 0x5000, 8, t2);
        creq.speculative = false;
        m.commit_load(&creq);
        let a = m.auditor.as_ref().unwrap();
        assert!(
            a.violations().is_empty(),
            "TimeGuarding must prevent squashed ts-30 from reaching committed ts-8"
        );
    }
}
