//! Executable definitions of Strictness Order (Definition 1) and Temporal
//! Order (Definition 2), and a runtime auditor that checks an execution's
//! observed timing flows against them.
//!
//! The paper's central claim is that if no instruction's timing is
//! influenced by an instruction it may not *strictly observe*, transient
//! execution attacks are impossible. The [`OrderAuditor`] makes this
//! checkable in simulation: mechanisms report each cross-instruction
//! timing influence (a TimeGuard-free minion read hit, an eviction, an
//! MSHR coalesce), and squashes/commits settle each instruction's fate.
//! Any flow from an instruction that was eventually *squashed* to one that
//! eventually *committed*, where the receiver does not temporally succeed
//! the source, is a violation — exactly the channel Spectre-class attacks
//! need. Under the GhostMinion scheme the auditor must stay empty; under
//! the unsafe baseline an attack program trips it.

use std::collections::HashMap;

/// Whether `y` may temporally succeed `x` within one thread (Definition
/// 2): `commit(x) ∨ seq(x, y)`.
///
/// With timestamps allocated in program order, `seq(x, y)` is `ts_x <=
/// ts_y`; `x_committed` covers the `commit(x)` disjunct.
pub fn temporal_allows(ts_x: u64, x_committed: bool, ts_y: u64) -> bool {
    x_committed || ts_x <= ts_y
}

/// Whether `y` may strictly observe `x` (Definition 1):
/// `commit(y) → commit(x)`.
///
/// Evaluated post-hoc, once both instructions' fates are known.
pub fn strictness_allows(x_committed: bool, y_committed: bool) -> bool {
    !y_committed || x_committed
}

/// A recorded timing influence from instruction `src` to instruction
/// `dst` (same core; cross-thread flows are only permitted from committed
/// instructions, which the auditor models with `src_committed`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Core on which both instructions executed.
    pub core: usize,
    /// Timestamp of the influencing instruction.
    pub src_ts: u64,
    /// Timestamp of the influenced instruction.
    pub dst_ts: u64,
    /// What mechanism carried the influence (for diagnostics).
    pub kind: FlowKind,
}

/// The mechanism through which a timing influence travelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// `dst` read a cache line that `src` filled.
    CacheLineRead,
    /// `dst`'s line was evicted by `src`'s fill.
    Eviction,
    /// `dst` coalesced onto an MSHR that `src` allocated.
    MshrCoalesce,
    /// `dst` was denied a resource held by `src`.
    ResourceContention,
}

/// A Strictness-Order violation: a squashed instruction influenced the
/// timing of a committed one it did not temporally precede.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderViolation {
    /// The offending influence.
    pub flow: Flow,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fate {
    Committed,
    Squashed,
}

/// Records timing flows during a run and settles them against
/// instruction fates.
///
/// Usage: mechanisms call [`OrderAuditor::record_flow`] as influences
/// happen; the machine calls [`OrderAuditor::settle_commit`] /
/// [`OrderAuditor::settle_squash`] as instructions retire or die;
/// [`OrderAuditor::violations`] lists every flow whose source was
/// squashed, destination committed, and `src_ts > dst_ts` (a
/// backwards-in-time flow from transient execution — the SpectreRewind /
/// Speculative-Interference channel), plus forward flows from squashed
/// instructions that persisted to committed readers (the classic Spectre
/// channel) when `strict_forward` is set.
#[derive(Clone, Debug, Default)]
pub struct OrderAuditor {
    flows: Vec<Flow>,
    fates: HashMap<(usize, u64), Fate>,
    /// Also flag squashed→committed flows where `src_ts <= dst_ts`
    /// (forward flows). Temporal Order permits these *while in flight*;
    /// they become attacks only if the effect persists past the squash,
    /// so this is enabled for post-squash persistence checks.
    pub strict_forward: bool,
}

impl OrderAuditor {
    /// Creates an empty auditor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a timing influence.
    pub fn record_flow(&mut self, flow: Flow) {
        self.flows.push(flow);
    }

    /// Marks an instruction as committed.
    pub fn settle_commit(&mut self, core: usize, ts: u64) {
        self.fates.insert((core, ts), Fate::Committed);
    }

    /// Marks every instruction of `core` with timestamp above `above_ts`
    /// as squashed.
    ///
    /// Fates are first-write-wins: an instruction that committed cannot
    /// later be squashed.
    pub fn settle_squash(&mut self, core: usize, above_ts: u64, max_ts: u64) {
        for ts in (above_ts + 1)..=max_ts {
            self.fates.entry((core, ts)).or_insert(Fate::Squashed);
        }
    }

    fn fate(&self, core: usize, ts: u64) -> Option<Fate> {
        self.fates.get(&(core, ts)).copied()
    }

    /// Evaluates all settled flows against Strictness Order.
    pub fn violations(&self) -> Vec<OrderViolation> {
        self.flows
            .iter()
            .filter_map(|f| {
                let src = self.fate(f.core, f.src_ts)?;
                let dst = self.fate(f.core, f.dst_ts)?;
                let src_committed = src == Fate::Committed;
                let dst_committed = dst == Fate::Committed;
                let backwards = f.src_ts > f.dst_ts;
                let illegal = !strictness_allows(src_committed, dst_committed)
                    && (backwards || self.strict_forward);
                illegal.then_some(OrderViolation { flow: *f })
            })
            .collect()
    }

    /// Number of recorded flows (settled or not).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Clears all recorded state.
    pub fn clear(&mut self) {
        self.flows.clear();
        self.fates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_order_definition() {
        // commit(x) allows anything.
        assert!(temporal_allows(10, true, 5));
        // seq(x, y) allows forward flow.
        assert!(temporal_allows(5, false, 10));
        assert!(temporal_allows(5, false, 5));
        // Speculative backwards flow is forbidden.
        assert!(!temporal_allows(10, false, 5));
    }

    #[test]
    fn strictness_order_definition() {
        // commit(y) -> commit(x): violated only when y commits and x does not.
        assert!(strictness_allows(true, true));
        assert!(strictness_allows(true, false));
        assert!(strictness_allows(false, false));
        assert!(!strictness_allows(false, true));
    }

    fn flow(src_ts: u64, dst_ts: u64) -> Flow {
        Flow {
            core: 0,
            src_ts,
            dst_ts,
            kind: FlowKind::CacheLineRead,
        }
    }

    #[test]
    fn backwards_flow_from_squashed_to_committed_is_violation() {
        let mut a = OrderAuditor::new();
        a.record_flow(flow(20, 10)); // ts 20 influenced ts 10
        a.settle_commit(0, 10);
        a.settle_squash(0, 15, 25); // ts 16..=25 squashed
        let v = a.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].flow.src_ts, 20);
    }

    #[test]
    fn forward_flow_between_committed_is_fine() {
        let mut a = OrderAuditor::new();
        a.record_flow(flow(10, 20));
        a.settle_commit(0, 10);
        a.settle_commit(0, 20);
        assert!(a.violations().is_empty());
    }

    #[test]
    fn backwards_flow_between_committed_is_fine() {
        // Both commit: commit(y) -> commit(x) holds.
        let mut a = OrderAuditor::new();
        a.record_flow(flow(20, 10));
        a.settle_commit(0, 10);
        a.settle_commit(0, 20);
        assert!(a.violations().is_empty());
    }

    #[test]
    fn flow_to_squashed_receiver_is_fine() {
        let mut a = OrderAuditor::new();
        a.record_flow(flow(20, 18));
        a.settle_squash(0, 15, 25); // both squashed
        assert!(a.violations().is_empty());
    }

    #[test]
    fn forward_persistence_flagged_only_in_strict_mode() {
        // A squashed instruction's fill read later by a committed one:
        // the classic Spectre channel (forward in timestamp order).
        let mut a = OrderAuditor::new();
        a.record_flow(flow(10, 20));
        a.settle_squash(0, 5, 15); // 10 squashed
        a.settle_commit(0, 20);
        assert!(a.violations().is_empty(), "lenient mode permits");
        a.strict_forward = true;
        assert_eq!(a.violations().len(), 1, "strict mode flags persistence");
    }

    #[test]
    fn commit_wins_over_later_squash_range() {
        let mut a = OrderAuditor::new();
        a.settle_commit(0, 10);
        a.settle_squash(0, 5, 15);
        a.record_flow(flow(10, 12));
        a.settle_commit(0, 12);
        // src ts 10 committed first; squash range must not flip it.
        assert!(a.violations().is_empty());
    }

    #[test]
    fn unsettled_flows_are_not_judged() {
        let mut a = OrderAuditor::new();
        a.record_flow(flow(20, 10));
        assert!(a.violations().is_empty(), "no fate, no verdict");
        assert_eq!(a.flow_count(), 1);
        a.clear();
        assert_eq!(a.flow_count(), 0);
    }
}
