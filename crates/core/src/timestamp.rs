//! The sliding-window timestamp encoding of §4.4.
//!
//! > "Logically and behaviourally, the TimeGuard can be considered a
//! > timestamp increasing to infinity. Implementation-wise, the maximum
//! > timestamp is sized to be twice the number of reorder-buffer entries,
//! > as a sliding window."
//!
//! The simulator carries unbounded `u64` sequence numbers; this module
//! shows the hardware-feasible encoding is equivalent: because at most
//! `N` (= ROB entries) instructions are in flight at once and timestamps
//! are allocated in order, any two *live* timestamps are within `N` of
//! each other, so a modulo-`2N` encoding distinguishes older from newer
//! unambiguously. Property tests in this module verify agreement with the
//! unbounded comparison for every in-window distance.

/// A modulo-2N timestamp window (footnote 5 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TsWindow {
    /// Number of reorder-buffer entries (`N`).
    rob_entries: u64,
}

impl TsWindow {
    /// Creates a window for a ROB of `rob_entries` entries.
    ///
    /// # Panics
    ///
    /// Panics if `rob_entries` is zero.
    pub fn new(rob_entries: u64) -> Self {
        assert!(rob_entries > 0, "ROB must have at least one entry");
        Self { rob_entries }
    }

    /// The modulus (`2N`).
    pub fn modulus(&self) -> u64 {
        2 * self.rob_entries
    }

    /// Encodes an unbounded sequence number into the window.
    pub fn wrap(&self, seq: u64) -> u64 {
        seq % self.modulus()
    }

    /// TimeGuarded **read** rule on wrapped timestamps: an instruction at
    /// `inst_w` may read a line stamped `line_w` iff the line is *not* in
    /// the "future" half-window `(inst_w, inst_w + N]`.
    ///
    /// Equivalent to `line_ts <= inst_ts` on unbounded timestamps whenever
    /// both are live simultaneously (distance < N).
    pub fn may_read(&self, line_w: u64, inst_w: u64) -> bool {
        let n = self.rob_entries;
        let m = self.modulus();
        // Distance from the instruction forward to the line.
        let fwd = (line_w + m - inst_w) % m;
        !(1..=n).contains(&fwd)
    }

    /// TimeGuarded **fill** rule on wrapped timestamps: an instruction at
    /// `inst_w` may overwrite a line stamped `line_w` iff the line *is*
    /// in `[inst_w, inst_w + N)` — i.e. it is the same age or newer.
    ///
    /// Equivalent to `line_ts >= inst_ts` on unbounded timestamps for live
    /// pairs.
    pub fn may_overwrite(&self, line_w: u64, inst_w: u64) -> bool {
        let n = self.rob_entries;
        let m = self.modulus();
        let fwd = (line_w + m - inst_w) % m;
        fwd < n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_is_modulo_2n() {
        let w = TsWindow::new(192);
        assert_eq!(w.modulus(), 384);
        assert_eq!(w.wrap(0), 0);
        assert_eq!(w.wrap(383), 383);
        assert_eq!(w.wrap(384), 0);
        assert_eq!(w.wrap(385), 1);
    }

    #[test]
    fn read_rule_simple_cases() {
        let w = TsWindow::new(4); // window of 8

        // Equal timestamps: readable (an instruction reads its own fill).
        assert!(w.may_read(5, 5));
        // Older line: readable.
        assert!(w.may_read(4, 5));
        // Newer line (future): not readable.
        assert!(!w.may_read(6, 5));
        // Wrapped: line 0 vs inst 7 — line is newer (7 -> 0 wraps forward
        // by 1), so not readable.
        assert!(!w.may_read(0, 7));
        // Wrapped the other way: line 7, inst 1 (inst wrapped past line):
        // forward distance from 1 to 7 is 6 > N=4, so 7 is "older".
        assert!(w.may_read(7, 1));
    }

    #[test]
    fn overwrite_rule_simple_cases() {
        let w = TsWindow::new(4);
        // Overwriting one's own or newer line: allowed.
        assert!(w.may_overwrite(5, 5));
        assert!(w.may_overwrite(6, 5));
        // Overwriting older (possibly committed) data: forbidden.
        assert!(!w.may_overwrite(4, 5));
        // Wrapped: inst 7 may overwrite line 0/1/2 (newer after wrap).
        assert!(w.may_overwrite(0, 7));
        assert!(w.may_overwrite(2, 7));
        assert!(!w.may_overwrite(3, 7), "distance N is out of the window");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_rob_panics() {
        let _ = TsWindow::new(0);
    }

    proptest! {
        /// For any two live timestamps (distance < N), the wrapped read
        /// rule agrees with the unbounded `line <= inst`.
        #[test]
        fn read_agrees_with_unbounded(
            base in 0u64..1_000_000,
            delta in 0u64..191,   // |line - inst| < N = 192
            line_is_newer in proptest::bool::ANY,
        ) {
            let w = TsWindow::new(192);
            let (line, inst) = if line_is_newer {
                (base + delta, base)
            } else {
                (base, base + delta)
            };
            let unbounded = line <= inst;
            prop_assert_eq!(
                w.may_read(w.wrap(line), w.wrap(inst)),
                unbounded,
                "line={} inst={}", line, inst
            );
        }

        /// Same for the fill/overwrite rule vs unbounded `line >= inst`.
        #[test]
        fn overwrite_agrees_with_unbounded(
            base in 0u64..1_000_000,
            delta in 0u64..191,
            line_is_newer in proptest::bool::ANY,
        ) {
            let w = TsWindow::new(192);
            let (line, inst) = if line_is_newer {
                (base + delta, base)
            } else {
                (base, base + delta)
            };
            let unbounded = line >= inst;
            prop_assert_eq!(
                w.may_overwrite(w.wrap(line), w.wrap(inst)),
                unbounded,
                "line={} inst={}", line, inst
            );
        }

        /// Read and overwrite partition the live window: for distinct live
        /// timestamps exactly one of may_read / may_overwrite-strictly
        /// holds, and both hold at equality.
        #[test]
        fn rules_are_consistent(a in 0u64..10_000, d in 0u64..191) {
            let w = TsWindow::new(192);
            let (la, lb) = (w.wrap(a), w.wrap(a + d));
            if d == 0 {
                prop_assert!(w.may_read(la, lb) && w.may_overwrite(la, lb));
            } else {
                // Line `a` is older than inst `a+d`: readable, not overwritable.
                prop_assert!(w.may_read(la, lb));
                prop_assert!(!w.may_overwrite(la, lb));
                // Line `a+d` is newer than inst `a`: overwritable, not readable.
                prop_assert!(!w.may_read(lb, la));
                prop_assert!(w.may_overwrite(lb, la));
            }
        }
    }
}
