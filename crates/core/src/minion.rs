//! The GhostMinion cache: a small set-associative compartment next to the
//! L1 that buffers speculative fills, with TimeGuarding on reads and
//! fills, free-slotting, and a timing-invariant wipe.
//!
//! The three rules (§4.3–§4.4):
//!
//! * **Read rule** — a load at timestamp `t` may only read a line whose
//!   stamp is ≤ `t` (fig. 4a). A blocked read behaves exactly like a
//!   miss, so the *existence* of a newer instruction's fill is invisible.
//! * **Fill rule** — a fill at timestamp `t` may only take a free slot or
//!   replace a line stamped ≥ `t` (fig. 4b); among eligible victims the
//!   highest stamp is chosen (footnote 4: only the highest-timestamped
//!   instruction knows the set is full). If no slot is eligible the data
//!   is returned to the CPU but **not retained** — the load will not have
//!   a line to move to the L1 at commit.
//! * **Free-slotting** — when a load commits, its line moves to the L1
//!   and is removed from the minion, creating a free slot so speculative
//!   fills need never evict committed data.

use gm_mem::{Cache, CacheConfig, MesiState};

/// Outcome of a TimeGuarded read probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinionRead {
    /// Line present and visible: hit, with the line's stamp.
    Hit {
        /// Temporal-Order timestamp the line is stamped with.
        stamp: u64,
    },
    /// Line present but stamped newer than the reader: behaves as a miss
    /// (§6.3 counts these as "TimeGuards").
    TimeGuarded,
    /// Line absent.
    Miss,
}

/// Outcome of a TimeGuarded fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinionFill {
    /// Stored (possibly displacing a newer-stamped line).
    Filled,
    /// No eligible slot: data bypasses the minion (counted as a fill
    /// failure; the line is "lost" for commit, §6.4).
    Rejected,
}

/// A GhostMinion cache (data- or instruction-side).
#[derive(Clone, Debug)]
pub struct GhostMinionCache {
    cache: Cache,
    timeguard: bool,
    // Event counters for Fig. 10 / §6.3.
    reads: u64,
    hits: u64,
    timeguards: u64,
    fills: u64,
    fill_rejects: u64,
    wipes: u64,
    wiped_lines: u64,
}

impl GhostMinionCache {
    /// Builds a minion of `bytes` capacity and `ways` associativity.
    /// `timeguard: false` gives the Fig. 9 "DMinion-Timeless" variant.
    pub fn new(bytes: u64, ways: usize, timeguard: bool) -> Self {
        Self {
            cache: Cache::new(CacheConfig {
                size_bytes: bytes,
                ways,
                // Accessed in parallel with the L1 (§4.3): the latency the
                // core observes is the L1's; the minion never adds cycles.
                latency: 0,
            }),
            timeguard,
            reads: 0,
            hits: 0,
            timeguards: 0,
            fills: 0,
            fill_rejects: 0,
            wipes: 0,
            wiped_lines: 0,
        }
    }

    /// TimeGuarded read probe by an instruction at timestamp `ts`.
    pub fn read(&mut self, addr: u64, ts: u64) -> MinionRead {
        self.reads += 1;
        match self.cache.access(addr) {
            Some(meta) => {
                if !self.timeguard || meta.stamp <= ts {
                    self.hits += 1;
                    MinionRead::Hit { stamp: meta.stamp }
                } else {
                    self.timeguards += 1;
                    MinionRead::TimeGuarded
                }
            }
            None => MinionRead::Miss,
        }
    }

    /// Probe without counting or LRU update (commit path, tests).
    pub fn probe_stamp(&self, addr: u64) -> Option<u64> {
        self.cache.probe(addr).map(|m| m.stamp)
    }

    /// TimeGuarded fill by an instruction at timestamp `ts`.
    ///
    /// Minion lines are always coherence-state `Shared` (§4.6) and never
    /// dirty (no writeback on wipe, §4.2).
    pub fn fill(&mut self, addr: u64, ts: u64) -> MinionFill {
        // A line already present: refresh only if the resident stamp is
        // >= ours (fill rule); a resident *older* line simply stays — the
        // requester could read it anyway.
        if let Some(meta) = self.cache.probe(addr) {
            if !self.timeguard || meta.stamp >= ts {
                self.cache.fill(addr, MesiState::Shared, ts);
                self.fills += 1;
            }
            return MinionFill::Filled;
        }
        if !self.timeguard {
            self.cache.fill(addr, MesiState::Shared, ts);
            self.fills += 1;
            return MinionFill::Filled;
        }
        if self.cache.free_ways(addr) > 0 {
            self.cache.fill(addr, MesiState::Shared, ts);
            self.fills += 1;
            return MinionFill::Filled;
        }
        // No free slot: evict the highest-stamped line that is >= ts.
        let victim = self
            .cache
            .set_lines(addr)
            .filter(|(_, m)| m.stamp >= ts)
            .max_by_key(|(_, m)| m.stamp)
            .map(|(a, _)| a);
        match victim {
            Some(v) => {
                self.cache.fill_replacing(addr, v, MesiState::Shared, ts);
                self.fills += 1;
                MinionFill::Filled
            }
            None => {
                self.fill_rejects += 1;
                MinionFill::Rejected
            }
        }
    }

    /// Commit-time extraction (§4.3 free-slotting): if the line is
    /// present and readable at `ts`, removes it and returns `true` so the
    /// caller can write it into the L1.
    pub fn take_for_commit(&mut self, addr: u64, ts: u64) -> bool {
        match self.cache.probe(addr) {
            Some(meta) if !self.timeguard || meta.stamp <= ts => {
                self.cache.invalidate(addr);
                true
            }
            _ => false,
        }
    }

    /// Coherence invalidation of a specific line (a remote store upgraded
    /// the line, §4.6).
    pub fn invalidate(&mut self, addr: u64) {
        self.cache.invalidate(addr);
    }

    /// Squash wipe (§4.2): clears all lines stamped strictly above
    /// `above_ts`, in constant time (parallel validity registers), so no
    /// timing channel reveals how much state was cleared.
    pub fn wipe_above(&mut self, above_ts: u64) -> usize {
        self.wipes += 1;
        let n = if self.timeguard {
            self.cache.invalidate_where(|stamp| stamp > above_ts)
        } else {
            // Timeless minion cannot distinguish ages: wipe everything.
            let n = self.cache.valid_lines();
            self.cache.invalidate_all();
            n
        };
        self.wiped_lines += n as u64;
        n
    }

    /// Lines currently resident.
    pub fn resident(&self) -> usize {
        self.cache.valid_lines()
    }

    /// `(reads, hits, timeguards, fills, fill_rejects, wipes, wiped_lines)`.
    pub fn counters(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.reads,
            self.hits,
            self.timeguards,
            self.fills,
            self.fill_rejects,
            self.wipes,
            self.wiped_lines,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 KiB, 2-way: 16 sets of 2 — the Table 1 minion.
    fn minion() -> GhostMinionCache {
        GhostMinionCache::new(2048, 2, true)
    }

    #[test]
    fn read_respects_timeguard() {
        let mut m = minion();
        assert_eq!(m.fill(0x1000, 22), MinionFill::Filled);
        // Fig. 4a: timestamp 21 must not see the line from 22.
        assert_eq!(m.read(0x1000, 21), MinionRead::TimeGuarded);
        // Timestamp 22 and later may.
        assert_eq!(m.read(0x1000, 22), MinionRead::Hit { stamp: 22 });
        assert_eq!(m.read(0x1000, 30), MinionRead::Hit { stamp: 22 });
        assert_eq!(m.read(0x2000, 30), MinionRead::Miss);
    }

    #[test]
    fn timeless_minion_ignores_stamps() {
        let mut m = GhostMinionCache::new(2048, 2, false);
        m.fill(0x1000, 22);
        assert_eq!(m.read(0x1000, 21), MinionRead::Hit { stamp: 22 });
    }

    #[test]
    fn fill_takes_free_slot_first() {
        let mut m = minion();
        assert_eq!(m.fill(0x1000, 10), MinionFill::Filled);
        // Same set (16 sets x 64B lines -> stride 1024).
        assert_eq!(m.fill(0x1000 + 1024, 5), MinionFill::Filled);
        assert_eq!(m.resident(), 2);
        // Both lines retained: the older fill went to the free way.
        assert!(m.probe_stamp(0x1000).is_some());
        assert!(m.probe_stamp(0x1000 + 1024).is_some());
    }

    #[test]
    fn fill_evicts_only_newer_stamped_lines() {
        let mut m = minion();
        // Fill both ways of one set with stamps 10 and 20.
        m.fill(0x1000, 10);
        m.fill(0x1000 + 1024, 20);
        // Fig. 4b: a fill at ts 15 may evict the ts-20 line but not ts-10.
        assert_eq!(m.fill(0x1000 + 2048, 15), MinionFill::Filled);
        assert!(m.probe_stamp(0x1000).is_some(), "older line survives");
        assert!(
            m.probe_stamp(0x1000 + 1024).is_none(),
            "newest line was the victim"
        );
        assert_eq!(m.probe_stamp(0x1000 + 2048), Some(15));
    }

    #[test]
    fn fill_rejected_when_all_lines_older() {
        let mut m = minion();
        m.fill(0x1000, 10);
        m.fill(0x1000 + 1024, 20);
        // ts 25 may not evict lines stamped 10 or 20 (both < 25).
        assert_eq!(m.fill(0x1000 + 2048, 25), MinionFill::Rejected);
        assert_eq!(m.resident(), 2);
        let (_, _, _, _, rejects, _, _) = m.counters();
        assert_eq!(rejects, 1);
    }

    #[test]
    fn fill_victim_is_highest_stamp() {
        let mut m = minion();
        m.fill(0x1000, 30);
        m.fill(0x1000 + 1024, 40);
        // ts 25 can evict either; must choose stamp 40 (footnote 4).
        assert_eq!(m.fill(0x1000 + 2048, 25), MinionFill::Filled);
        assert!(m.probe_stamp(0x1000).is_some(), "stamp 30 survives");
        assert!(m.probe_stamp(0x1000 + 1024).is_none(), "stamp 40 evicted");
    }

    #[test]
    fn refill_of_resident_line_keeps_oldest_stamp() {
        let mut m = minion();
        m.fill(0x1000, 30);
        // An older instruction re-fills the same line: stamp lowers to 10,
        // widening visibility (safe: 10 could have brought it itself).
        m.fill(0x1000, 10);
        assert_eq!(m.probe_stamp(0x1000), Some(10));
        // A newer fill must NOT raise the stamp (that would hide the line
        // from instructions between 10 and 50 that may validly read it).
        m.fill(0x1000, 50);
        assert_eq!(m.probe_stamp(0x1000), Some(10));
    }

    #[test]
    fn take_for_commit_frees_slot() {
        let mut m = minion();
        m.fill(0x1000, 10);
        assert!(m.take_for_commit(0x1000, 10));
        assert_eq!(m.resident(), 0, "free-slotting evicts on commit");
        assert!(!m.take_for_commit(0x1000, 10), "already gone");
    }

    #[test]
    fn take_for_commit_respects_guard() {
        let mut m = minion();
        m.fill(0x1000, 22);
        // A committing instruction at ts 21 cannot take 22's line.
        assert!(!m.take_for_commit(0x1000, 21));
        assert_eq!(m.resident(), 1);
    }

    #[test]
    fn wipe_above_clears_only_newer() {
        let mut m = minion();
        // Distinct sets so all three fills land (2 KiB 2-way = 16 sets).
        m.fill(0x1000, 10);
        m.fill(0x1040, 20);
        m.fill(0x1080, 30);
        // Squash above ts 15 (footnote 2: wipe only above the
        // misspeculation point, not everything).
        assert_eq!(m.wipe_above(15), 2);
        assert!(m.probe_stamp(0x1000).is_some());
        assert!(m.probe_stamp(0x1040).is_none());
        assert!(m.probe_stamp(0x1080).is_none());
    }

    #[test]
    fn timeless_wipe_clears_everything() {
        let mut m = GhostMinionCache::new(2048, 2, false);
        m.fill(0x1000, 10);
        m.fill(0x2000, 20);
        assert_eq!(m.wipe_above(15), 2);
        assert_eq!(m.resident(), 0);
    }

    #[test]
    fn counters_track_events() {
        let mut m = minion();
        m.fill(0x1000, 22);
        m.read(0x1000, 21); // timeguard
        m.read(0x1000, 22); // hit
        m.read(0x9000, 22); // miss
        let (reads, hits, guards, fills, rejects, wipes, wiped) = m.counters();
        assert_eq!(reads, 3);
        assert_eq!(hits, 1);
        assert_eq!(guards, 1);
        assert_eq!(fills, 1);
        assert_eq!(rejects, 0);
        assert_eq!((wipes, wiped), (0, 0));
    }

    #[test]
    fn coherence_invalidate_removes_line() {
        let mut m = minion();
        m.fill(0x1000, 5);
        m.invalidate(0x1000);
        assert_eq!(m.read(0x1000, 10), MinionRead::Miss);
    }
}
