#![warn(missing_docs)]

//! **GhostMinion**: a strictness-ordered cache system for Spectre
//! mitigation — a from-scratch Rust reproduction of the MICRO 2021 paper
//! by Sam Ainsworth.
//!
//! # What this crate provides
//!
//! * [`timestamp`] — the sliding-window timestamp encoding of §4.4
//!   (2×ROB-entries window with wrap-around), verified against unbounded
//!   comparison.
//! * [`order`] — executable definitions of **Strictness Order**
//!   (Definition 1) and **Temporal Order** (Definition 2), plus a runtime
//!   [`order::OrderAuditor`] that checks an execution's observed
//!   information flows against Temporal Order.
//! * [`minion`] — the GhostMinion cache itself: TimeGuarded reads and
//!   fills (§4.4), free-slotting (§4.3), and the timing-invariant
//!   wipe-above-timestamp (§4.2).
//! * [`memsys`] — the full memory hierarchy of Table 1 (L1I/L1D + minions
//!   per core, shared L2 with stride prefetcher, DDR3 DRAM, MSHRs at every
//!   level with leapfrogging and timeleaping, MESI coherence across
//!   cores), implementing `gm_sim::MemoryBackend` once for **every**
//!   mitigation scheme the paper compares.
//! * [`scheme`] — the scheme definitions: GhostMinion (and its Fig. 9
//!   breakdown variants), MuonTrap / MuonTrap-Flush, InvisiSpec-Spectre /
//!   -Future, STT-Spectre / -Future, and the unprotected baseline.
//! * [`machine`] — cores + memory system assembled into a runnable
//!   [`machine::Machine`].
//!
//! # Quickstart
//!
//! ```
//! use ghostminion::{Machine, Scheme, SystemConfig};
//! use gm_isa::{Asm, Reg};
//!
//! let mut a = Asm::new("demo");
//! a.li(Reg::x(1), 2);
//! a.li(Reg::x(2), 40);
//! a.add(Reg::x(3), Reg::x(1), Reg::x(2));
//! a.halt();
//! let prog = a.assemble();
//!
//! let mut m = Machine::new(Scheme::ghost_minion(), SystemConfig::tiny(), vec![prog]);
//! let result = m.run(100_000);
//! assert_eq!(m.core(0).reg(Reg::x(3)), 42);
//! assert!(result.cycles > 0);
//! ```

pub mod machine;
pub mod memsys;
pub mod minion;
pub mod order;
pub mod scheme;
pub mod timestamp;

pub use machine::{Machine, MachineResult, SystemConfig};
pub use memsys::{MemStats, MemorySystem};
pub use minion::GhostMinionCache;
pub use order::{OrderAuditor, OrderViolation};
pub use scheme::{GhostMinionConfig, Scheme, SchemeKind};
pub use timestamp::TsWindow;
