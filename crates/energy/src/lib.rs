//! SRAM energy model reproducing the paper's §6.5 power analysis.
//!
//! The paper uses CACTI 6.0 at 22 nm and reports two anchor points:
//!
//! * 2 KiB GhostMinion: **0.47 mW** static, **1.5 pJ** per read;
//! * 64 KiB L1 data cache: **12.8 mW** static, **8.6 pJ** per read.
//!
//! We fit simple power laws through those anchors (static power scales
//! almost linearly with capacity; access energy roughly with its square
//! root, as bitline/wordline lengths grow with each dimension of the
//! array) and expose the §6.5 computation: given access counts from a
//! simulation and its cycle count at 2 GHz, the extra dynamic power the
//! GhostMinion accesses cost. The paper's result — ≈3 µW data-side,
//! ≈1 µW instruction-side, negligible against ≈1 W/core — must
//! reproduce.

/// Energy/leakage figures for one SRAM array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SramModel {
    /// Capacity in bytes.
    pub bytes: u64,
    /// Static (leakage) power in milliwatts.
    pub static_mw: f64,
    /// Energy per read access in picojoules.
    pub read_pj: f64,
    /// Energy per write access in picojoules (CACTI puts writes close to
    /// reads for these small arrays; we use the same figure).
    pub write_pj: f64,
}

/// Core clock the paper models (Table 1): 2 GHz.
pub const CLOCK_HZ: f64 = 2.0e9;

// Anchor points from §6.5.
const ANCHOR_SMALL_BYTES: f64 = 2048.0;
const ANCHOR_SMALL_MW: f64 = 0.47;
const ANCHOR_SMALL_PJ: f64 = 1.5;
const ANCHOR_LARGE_BYTES: f64 = 65536.0;
const ANCHOR_LARGE_MW: f64 = 12.8;
const ANCHOR_LARGE_PJ: f64 = 8.6;

fn fitted_exponent(small: f64, large: f64) -> f64 {
    (large / small).ln() / (ANCHOR_LARGE_BYTES / ANCHOR_SMALL_BYTES).ln()
}

/// Builds the fitted model for an SRAM of `bytes` capacity.
///
/// # Panics
///
/// Panics for zero-sized arrays.
pub fn sram_model(bytes: u64) -> SramModel {
    assert!(bytes > 0, "SRAM must have capacity");
    let ratio = bytes as f64 / ANCHOR_SMALL_BYTES;
    let static_exp = fitted_exponent(ANCHOR_SMALL_MW, ANCHOR_LARGE_MW);
    let read_exp = fitted_exponent(ANCHOR_SMALL_PJ, ANCHOR_LARGE_PJ);
    let read_pj = ANCHOR_SMALL_PJ * ratio.powf(read_exp);
    SramModel {
        bytes,
        static_mw: ANCHOR_SMALL_MW * ratio.powf(static_exp),
        read_pj,
        write_pj: read_pj,
    }
}

/// Average dynamic power (in microwatts) of `reads` + `writes` accesses
/// to `model` spread over `cycles` cycles at 2 GHz.
///
/// # Panics
///
/// Panics if `cycles` is zero.
pub fn dynamic_uw(model: &SramModel, reads: u64, writes: u64, cycles: u64) -> f64 {
    assert!(cycles > 0, "cannot average over zero cycles");
    let energy_pj = reads as f64 * model.read_pj + writes as f64 * model.write_pj;
    let seconds = cycles as f64 / CLOCK_HZ;
    // 1 pJ/s = 1e-12 W = 1e-6 µW.
    energy_pj * 1e-12 / seconds * 1e6
}

/// The §6.5 table: GhostMinion vs L1 static power and read energy.
pub fn section65_report() -> String {
    let minion = sram_model(2048);
    let l1d = sram_model(64 * 1024);
    format!(
        "structure        size    static(mW)  read(pJ)\n\
         GhostMinion      2KiB    {:>8.2}  {:>8.1}\n\
         L1 data cache    64KiB   {:>8.1}  {:>8.1}\n",
        minion.static_mw, minion.read_pj, l1d.static_mw, l1d.read_pj
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_paper_numbers() {
        let minion = sram_model(2048);
        assert!((minion.static_mw - 0.47).abs() < 1e-9);
        assert!((minion.read_pj - 1.5).abs() < 1e-9);
        let l1 = sram_model(64 * 1024);
        assert!((l1.static_mw - 12.8).abs() < 1e-9);
        assert!((l1.read_pj - 8.6).abs() < 1e-9);
    }

    #[test]
    fn interpolation_is_monotonic() {
        let sizes = [128u64, 512, 2048, 8192, 65536, 2 * 1024 * 1024];
        let mut last = sram_model(sizes[0]);
        for &s in &sizes[1..] {
            let m = sram_model(s);
            assert!(m.static_mw > last.static_mw, "{s}");
            assert!(m.read_pj > last.read_pj, "{s}");
            last = m;
        }
    }

    #[test]
    fn minion_dynamic_power_is_microwatt_scale() {
        let minion = sram_model(2048);
        let cycles = 1_000_000;
        let uw = dynamic_uw(&minion, cycles / 3, cycles / 30, cycles);
        assert!(
            uw < 2500.0,
            "minion dynamic power must be trivially small: {uw} µW"
        );
        let uw_paper = dynamic_uw(&minion, cycles / 200, cycles / 2000, cycles);
        assert!(uw_paper < 20.0, "{uw_paper} µW");
    }

    #[test]
    fn report_contains_anchor_rows() {
        let r = section65_report();
        assert!(r.contains("0.47"));
        assert!(r.contains("12.8"));
        assert!(r.contains("8.6"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_size_panics() {
        let _ = sram_model(0);
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn zero_cycles_panics() {
        let m = sram_model(2048);
        let _ = dynamic_uw(&m, 1, 1, 0);
    }
}
