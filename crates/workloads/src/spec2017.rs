//! SPECspeed 2017 analogs — the Fig. 8 workload set.
//!
//! SPEC2017's larger inputs mostly *reduce* relative mitigation overhead
//! (the paper reports 0.6% geomean vs 2.5% on 2006): more of the time
//! goes to DRAM streaming that no scheme perturbs. The analogs reflect
//! that: mostly large-footprint regular kernels, with `mcf` and `wrf`
//! keeping the misspeculated-prefetch reliance the paper calls out.

use crate::kernels::*;
use crate::{Scale, Workload};
use gm_isa::Asm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(
    name: &'static str,
    seed: u64,
    f: impl FnOnce(&mut Asm, &mut StdRng, u64),
    scale: Scale,
) -> Workload {
    let mut a = Asm::new(name);
    let mut rng = StdRng::seed_from_u64(0x2017_2017 ^ seed);
    f(&mut a, &mut rng, scale.factor());
    a.halt();
    Workload {
        name,
        program: a.assemble(),
    }
}

const M: u64 = 0x0100_0000;

/// Builds the 18 SPECspeed 2017 analogs, in Fig. 8 order.
pub fn spec2017_analogs(scale: Scale) -> Vec<Workload> {
    vec![
        build(
            "bwaves",
            1,
            |a, _, f| {
                stream_sum(a, M, 1 << 17, f, 8, true);
            },
            scale,
        ),
        build(
            "cactuBSSN",
            2,
            |a, _, f| {
                stencil(a, M, 512, 64, f / 2 + 1);
            },
            scale,
        ),
        build(
            "cam4",
            3,
            |a, _, f| {
                stencil(a, M, 256, 64, f / 2 + 1);
                fp_compute(a, 400 * f, 20);
            },
            scale,
        ),
        build(
            "deepsjeng",
            4,
            |a, r, f| {
                branchy(a, r, M, 4096, f / 2 + 1);
            },
            scale,
        ),
        build(
            "exchange2",
            5,
            |a, r, f| {
                // Integer puzzle solver: branchy, cache-resident.
                branchy(a, r, M, 1024, f);
                dp_inner(a, 2 * M, 512, 1);
            },
            scale,
        ),
        build(
            "fotonik3d",
            6,
            |a, _, f| {
                stencil(a, M, 512, 128, f / 3 + 1);
            },
            scale,
        ),
        build(
            "gcc",
            7,
            |a, r, f| {
                pointer_chase(a, r, M, 1 << 14, 350 * f, 10, 2 * M);
                branchy(a, r, 3 * M, 512, 1);
            },
            scale,
        ),
        build(
            "imagick",
            8,
            |a, _, f| {
                fp_compute(a, 1200 * f, 9);
                stream_sum(a, M, 1 << 13, 1, 1, true);
            },
            scale,
        ),
        build(
            "lbm",
            9,
            |a, _, f| {
                stencil(a, M, 1024, 32, f / 3 + 1);
                stream_sum(a, 9 * M, 1 << 16, f / 3 + 1, 8, true);
            },
            scale,
        ),
        build(
            "leela",
            10,
            |a, r, f| {
                branchy(a, r, M, 2048, f / 2 + 1);
                indexed_gather(a, r, 2 * M, 3 * M, 512, 1 << 13, 1);
            },
            scale,
        ),
        build(
            "mcf",
            11,
            |a, r, f| {
                pointer_chase(a, r, M, 1 << 16, 900 * f, 30, 9 * M);
            },
            scale,
        ),
        build(
            "nab",
            12,
            |a, _, f| {
                fp_compute(a, 1400 * f, 14);
            },
            scale,
        ),
        build(
            "perlbench",
            13,
            |a, r, f| {
                pointer_chase(a, r, M, 1 << 12, 200 * f, 6, 2 * M);
                branchy(a, r, 3 * M, 1024, f / 3 + 1);
            },
            scale,
        ),
        build(
            "pop2",
            14,
            |a, _, f| {
                stencil(a, M, 512, 64, f / 2 + 1);
                stream_sum(a, 9 * M, 1 << 14, 1, 8, true);
            },
            scale,
        ),
        build(
            "roms",
            15,
            |a, _, f| {
                stencil(a, M, 256, 128, f / 2 + 1);
            },
            scale,
        ),
        build(
            "wrf",
            16,
            |a, r, f| {
                // Paper: wrf is hurt by losing misspeculated data access.
                stencil(a, M, 256, 64, f / 3 + 1);
                pointer_chase(a, r, 9 * M, 1 << 14, 300 * f, 14, 10 * M);
            },
            scale,
        ),
        build(
            "xalancbmk",
            17,
            |a, r, f| {
                pointer_chase(a, r, M, 1 << 12, 300 * f, 8, 2 * M);
                indexed_gather(a, r, 3 * M, 4 * M, 1024, 1 << 16, f / 3 + 1);
            },
            scale,
        ),
        build(
            "xz",
            18,
            |a, r, f| {
                branchy(a, r, M, 2048, f / 3 + 1);
                indexed_gather(a, r, 2 * M, 3 * M, 2048, 1 << 17, f / 3 + 1);
            },
            scale,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_figure8() {
        let names: Vec<&str> = spec2017_analogs(Scale::Test)
            .iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "bwaves",
                "cactuBSSN",
                "cam4",
                "deepsjeng",
                "exchange2",
                "fotonik3d",
                "gcc",
                "imagick",
                "lbm",
                "leela",
                "mcf",
                "nab",
                "perlbench",
                "pop2",
                "roms",
                "wrf",
                "xalancbmk",
                "xz"
            ]
        );
    }

    #[test]
    fn deterministic_across_builds() {
        let a = spec2017_analogs(Scale::Bench);
        let b = spec2017_analogs(Scale::Bench);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.program, y.program);
        }
    }
}
