//! Reusable kernel generators.
//!
//! Each generator appends one self-contained loop nest (with its data
//! segments) to an [`Asm`] under construction. Register use is confined
//! to `x1..=x20` and `f1..=f10`; callers that wrap kernels in outer loops
//! should use registers above `x24`.

use gm_isa::{Asm, DataSegment, Reg};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Builds a `count`-slot singly linked ring of cache-line-sized nodes at
/// `base`, in a random (seeded) order. Each node holds `[next_addr,
/// payload]` in its first 16 bytes; payloads are uniform in `0..256`.
pub fn linked_ring(a: &mut Asm, rng: &mut StdRng, base: u64, count: u64) {
    let mut order: Vec<u64> = (0..count).collect();
    order.shuffle(rng);
    let mut words = vec![0u64; (count * 8) as usize];
    for i in 0..count as usize {
        let cur = order[i];
        let next = order[(i + 1) % count as usize];
        words[(cur * 8) as usize] = base + next * 64;
        words[(cur * 8 + 1) as usize] = rng.gen_range(0..256);
    }
    a.data(DataSegment::words(base, &words));
}

/// Sequential sweep(s) over an array, accumulating into `x3`/`f3`.
///
/// Models streaming FP/integer codes (lbm, bwaves, libquantum): large
/// footprint, perfectly strided — prefetcher- and DRAM-bound.
pub fn stream_sum(a: &mut Asm, base: u64, words: u64, passes: u64, stride_words: u64, fp: bool) {
    assert!(words > 0 && passes > 0 && stride_words > 0);
    let data: Vec<u64> = (0..words.min(65536))
        .map(|i| if fp { (i as f64).to_bits() } else { i })
        .collect();
    a.data(DataSegment::words(base, &data));
    let (ptr, end, pass, npass, v) = (Reg::x(1), Reg::x(2), Reg::x(4), Reg::x(5), Reg::x(6));
    let acc = if fp { Reg::f(3) } else { Reg::x(3) };
    a.li(pass, 0);
    a.li(npass, passes as i64);
    let outer = a.here();
    a.li(ptr, base as i64);
    a.li(end, (base + 8 * words) as i64);
    let inner = a.here();
    a.ld(v, ptr, 0);
    if fp {
        a.fadd(acc, acc, v);
    } else {
        a.add(acc, acc, v);
    }
    a.addi(ptr, ptr, (8 * stride_words) as i64);
    a.bltu(ptr, end, inner);
    a.addi(pass, pass, 1);
    a.bne(pass, npass, outer);
}

/// Dependent pointer chase over a [`linked_ring`], with a rare
/// data-dependent side branch whose condition hangs on a *second* slow
/// load, so the pipeline runs far ahead down the chase while it
/// resolves.
///
/// This is the mcf/gcc character: the occasionally-mispredicted branch
/// squashes wrong-path work that *would have been useful* — under the
/// unsafe baseline those future nodes stay in the L1, under GhostMinion
/// they are wiped (the source of mcf's ≈30% overhead in Fig. 6).
///
/// `rare_threshold` (0–255) sets the side-branch take rate; payloads are
/// uniform, so `20` ≈ 8%.
pub fn pointer_chase(
    a: &mut Asm,
    rng: &mut StdRng,
    base: u64,
    nodes: u64,
    hops: u64,
    rare_threshold: u8,
    weights_base: u64,
) {
    linked_ring(a, rng, base, nodes);
    // Weight table mirrors the node arena one line per node, so the
    // weight load is as cold as the chase itself: the rare branch stays
    // unresolved for a full memory latency while the front-end
    // speculates ahead down the chase.
    let arena_bytes = nodes * 64;
    let wcount = nodes.min(65536) as usize;
    let mut wseg = vec![0u64; wcount * 8];
    for i in 0..wcount {
        wseg[i * 8] = rng.gen_range(0..256);
    }
    a.data(DataSegment::words(weights_base, &wseg));
    // Second weight level, dependent on the first: the rare branch's
    // condition resolves only after TWO serialised cold misses, so the
    // front-end speculates ~2 chase hops ahead before it can squash.
    let weights2_base = weights_base + arena_bytes;
    let mut w2seg = vec![0u64; wcount * 8];
    for i in 0..wcount {
        w2seg[i * 8] = rng.gen_range(0..256);
    }
    a.data(DataSegment::words(weights2_base, &w2seg));

    let (node, payload, weight, i, n, acc, thr, tmp) = (
        Reg::x(1),
        Reg::x(2),
        Reg::x(6),
        Reg::x(4),
        Reg::x(5),
        Reg::x(3),
        Reg::x(7),
        Reg::x(8),
    );
    a.li(node, base as i64);
    a.li(i, 0);
    a.li(n, hops as i64);
    a.li(thr, rare_threshold as i64);
    a.li(Reg::x(9), (arena_bytes - 1) as i64 & !63);
    let top = a.here();
    let rare = a.label();
    let cont = a.label();
    a.ld(payload, node, 8);
    // First slow load: the node's weight line — cold like the chase.
    a.sub(tmp, node, Reg::ZERO);
    a.addi(tmp, tmp, -(base as i64));
    a.and(tmp, tmp, Reg::x(9));
    a.addi(tmp, tmp, weights_base as i64);
    a.ld(weight, tmp, 0);
    // Second slow load depends on the first: addr = w2[(off + w1*64) & mask].
    let tmp2 = Reg::x(10);
    a.slli(tmp2, weight, 6);
    a.add(tmp2, tmp2, tmp);
    a.addi(tmp2, tmp2, -(weights_base as i64));
    a.and(tmp2, tmp2, Reg::x(9));
    a.addi(tmp2, tmp2, (weights_base + arena_bytes) as i64);
    a.ld(weight, tmp2, 0);
    // Rare branch on the doubly-slow load chain: resolves ~2 memory
    // latencies after fetch has speculated ahead down the chase.
    a.blt(weight, thr, rare);
    a.bind(cont);
    a.ld(node, node, 0); // chase
    a.addi(i, i, 1);
    a.bne(i, n, top);
    let done = a.label();
    a.j(done);
    a.bind(rare);
    // Small amount of real work in the rare handler, then continue.
    a.add(acc, acc, weight);
    a.xor(acc, acc, payload);
    a.j(cont);
    a.bind(done);
}

/// Indexed gather: `acc += data[idx[i]]` — every data address depends on
/// a prior load, the STT transmitter worst case (astar, omnetpp,
/// xalancbmk).
pub fn indexed_gather(
    a: &mut Asm,
    rng: &mut StdRng,
    idx_base: u64,
    data_base: u64,
    n_idx: u64,
    data_words: u64,
    passes: u64,
) {
    let idx: Vec<u64> = (0..n_idx).map(|_| rng.gen_range(0..data_words)).collect();
    a.data(DataSegment::words(idx_base, &idx));
    let data: Vec<u64> = (0..data_words.min(65536)).map(|i| i * 3).collect();
    a.data(DataSegment::words(data_base, &data));

    let (ip, iend, di, v, acc, pass, npass) = (
        Reg::x(1),
        Reg::x(2),
        Reg::x(4),
        Reg::x(5),
        Reg::x(3),
        Reg::x(6),
        Reg::x(7),
    );
    a.li(pass, 0);
    a.li(npass, passes as i64);
    let outer = a.here();
    a.li(ip, idx_base as i64);
    a.li(iend, (idx_base + 8 * n_idx) as i64);
    let inner = a.here();
    a.ld(di, ip, 0); // load index
    a.slli(di, di, 3);
    a.addi(di, di, data_base as i64);
    a.ld(v, di, 0); // dependent (tainted-address) load
    a.add(acc, acc, v);
    a.addi(ip, ip, 8);
    a.bltu(ip, iend, inner);
    a.addi(pass, pass, 1);
    a.bne(pass, npass, outer);
}

/// Branch-entropy kernel: walks a random word array and takes a chain of
/// data-dependent branches per element (gobmk/sjeng character: game-tree
/// evaluation with hard-to-predict control flow).
pub fn branchy(a: &mut Asm, rng: &mut StdRng, base: u64, words: u64, passes: u64) {
    let data: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
    a.data(DataSegment::words(base, &data));
    let (ptr, end, v, acc, b, pass, npass) = (
        Reg::x(1),
        Reg::x(2),
        Reg::x(4),
        Reg::x(3),
        Reg::x(5),
        Reg::x(6),
        Reg::x(7),
    );
    a.li(pass, 0);
    a.li(npass, passes as i64);
    let outer = a.here();
    a.li(ptr, base as i64);
    a.li(end, (base + 8 * words) as i64);
    let inner = a.here();
    a.ld(v, ptr, 0);
    // One genuinely hard branch (~6% taken on random data) plus two
    // highly skewed ones the predictor learns, giving a realistic
    // game-tree misprediction rate rather than coin flips.
    let skip0 = a.label();
    a.andi(b, v, 15);
    a.bne(b, Reg::ZERO, skip0); // ~94% taken, mispredicts ~6%
    a.add(acc, acc, v);
    a.xori(acc, acc, 0x55);
    a.bind(skip0);
    for shift in [7i64, 13] {
        let skip = a.label();
        a.srli(b, v, shift);
        a.andi(b, b, 255);
        a.beq(b, Reg::ZERO, skip); // ~0.4% taken: easily learned
        a.addi(acc, acc, 1);
        a.bind(skip);
        a.add(acc, acc, b);
    }
    a.addi(ptr, ptr, 8);
    a.bltu(ptr, end, inner);
    a.addi(pass, pass, 1);
    a.bne(pass, npass, outer);
}

/// FP compute chain with periodic non-pipelined divides/square roots
/// (povray/calculix character; the §4.9 structural-hazard units).
pub fn fp_compute(a: &mut Asm, iters: u64, div_every: u64) {
    assert!(div_every > 0);
    let (i, n) = (Reg::x(1), Reg::x(2));
    let (x, y, z) = (Reg::f(1), Reg::f(2), Reg::f(3));
    a.li(i, 0);
    a.li(n, iters as i64);
    a.li(Reg::x(3), 3.0f64.to_bits() as i64);
    a.mv(Reg::x(4), Reg::x(3));
    a.emit(gm_isa::Inst::new(
        gm_isa::Op::Fadd,
        x,
        Reg::x(3),
        Reg::ZERO,
        0,
    ));
    a.emit(gm_isa::Inst::new(
        gm_isa::Op::Fadd,
        y,
        Reg::x(4),
        Reg::ZERO,
        0,
    ));
    let (dcnt, dmax) = (Reg::x(5), Reg::x(6));
    a.li(dcnt, 0);
    a.li(dmax, div_every as i64);
    let top = a.here();
    a.fmul(z, x, y);
    a.fadd(x, z, y);
    a.fsub(y, x, z);
    a.addi(dcnt, dcnt, 1);
    let skip = a.label();
    a.bne(dcnt, dmax, skip);
    a.fdiv(z, x, y);
    a.fsqrt(x, z);
    a.li(dcnt, 0);
    a.bind(skip);
    a.addi(i, i, 1);
    a.bne(i, n, top);
}

/// 2D five-point stencil over a row-major grid (cactusADM, zeusmp,
/// leslie3d character: multiple concurrent streams, moderate reuse).
pub fn stencil(a: &mut Asm, base: u64, cols: u64, rows: u64, passes: u64) {
    assert!(rows >= 3 && cols >= 3);
    let words = rows * cols;
    let data: Vec<u64> = (0..words.min(65536))
        .map(|i| ((i % 97) as f64).to_bits())
        .collect();
    a.data(DataSegment::words(base, &data));
    let (ptr, end, pass, npass) = (Reg::x(1), Reg::x(2), Reg::x(6), Reg::x(7));
    let (up, dn, lf, rt, c) = (Reg::f(1), Reg::f(2), Reg::f(3), Reg::f(4), Reg::f(5));
    let row_bytes = (cols * 8) as i64;
    a.li(pass, 0);
    a.li(npass, passes as i64);
    let outer = a.here();
    a.li(ptr, (base + cols * 8 + 8) as i64); // (1,1)
    a.li(end, (base + (rows - 1) * cols * 8 - 8) as i64);
    let inner = a.here();
    a.ld(c, ptr, 0);
    a.ld(lf, ptr, -8);
    a.ld(rt, ptr, 8);
    a.ld(up, ptr, -row_bytes);
    a.ld(dn, ptr, row_bytes);
    a.fadd(c, c, lf);
    a.fadd(c, c, rt);
    a.fadd(c, c, up);
    a.fadd(c, c, dn);
    a.st(c, ptr, 0);
    a.addi(ptr, ptr, 8);
    a.bltu(ptr, end, inner);
    a.addi(pass, pass, 1);
    a.bne(pass, npass, outer);
}

/// Dynamic-programming inner loop (hmmer/h264ref character): sequential
/// loads with short dependent ALU chains and very good locality.
pub fn dp_inner(a: &mut Asm, base: u64, words: u64, passes: u64) {
    let data: Vec<u64> = (0..words).map(|i| (i * 7 + 13) & 0xffff).collect();
    a.data(DataSegment::words(base, &data));
    let (ptr, end, v, m, acc, pass, npass, t) = (
        Reg::x(1),
        Reg::x(2),
        Reg::x(4),
        Reg::x(5),
        Reg::x(3),
        Reg::x(6),
        Reg::x(7),
        Reg::x(8),
    );
    a.li(pass, 0);
    a.li(npass, passes as i64);
    let outer = a.here();
    a.li(ptr, base as i64);
    a.li(end, (base + 8 * words) as i64);
    a.li(m, 0);
    let inner = a.here();
    a.ld(v, ptr, 0);
    a.add(t, v, acc);
    // Branch-free max: m = max(m, t).
    a.slt(Reg::x(9), m, t);
    a.mul(Reg::x(10), Reg::x(9), t);
    a.xori(Reg::x(9), Reg::x(9), 1);
    a.mul(Reg::x(11), Reg::x(9), m);
    a.add(m, Reg::x(10), Reg::x(11));
    a.add(acc, acc, v);
    a.srli(acc, acc, 1);
    a.addi(ptr, ptr, 8);
    a.bltu(ptr, end, inner);
    a.addi(pass, pass, 1);
    a.bne(pass, npass, outer);
}

/// Integer divide pressure (SpectreRewind's contention unit), mixed into
/// an otherwise ALU-bound loop.
pub fn int_div_mix(a: &mut Asm, iters: u64) {
    let (i, n, x, y, q) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4), Reg::x(5));
    a.li(i, 0);
    a.li(n, iters as i64);
    a.li(x, 982_451_653);
    a.li(y, 57);
    let top = a.here();
    a.div(q, x, y);
    a.mul(x, q, y);
    a.addi(x, x, 17);
    a.addi(i, i, 1);
    a.bne(i, n, top);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn assemble(build: impl FnOnce(&mut Asm, &mut StdRng)) -> gm_isa::Program {
        let mut a = Asm::new("k");
        let mut r = rng();
        build(&mut a, &mut r);
        a.halt();
        let p = a.assemble();
        assert!(p.validate().is_ok());
        p
    }

    #[test]
    fn linked_ring_is_a_single_cycle() {
        let mut a = Asm::new("ring");
        let mut r = rng();
        linked_ring(&mut a, &mut r, 0x1000, 16);
        a.halt();
        let p = a.assemble();
        // Walk the ring functionally from the data segment.
        let seg = &p.data[0];
        let read = |addr: u64| {
            let off = (addr - seg.base) as usize;
            u64::from_le_bytes(seg.bytes[off..off + 8].try_into().unwrap())
        };
        let mut seen = std::collections::HashSet::new();
        let mut node = 0x1000u64;
        for _ in 0..16 {
            assert!(seen.insert(node), "ring revisited {node:#x} early");
            node = read(node);
        }
        assert_eq!(node, 0x1000, "ring must close after 16 hops");
    }

    #[test]
    fn ring_payloads_are_byte_range() {
        let mut a = Asm::new("ring");
        let mut r = rng();
        linked_ring(&mut a, &mut r, 0x1000, 64);
        a.halt();
        let p = a.assemble();
        let seg = &p.data[0];
        for i in 0..64usize {
            let off = i * 64 + 8;
            let v = u64::from_le_bytes(seg.bytes[off..off + 8].try_into().unwrap());
            assert!(v < 256);
        }
    }

    #[test]
    fn kernels_assemble() {
        assemble(|a, _| stream_sum(a, 0x10_0000, 512, 2, 1, false));
        assemble(|a, _| stream_sum(a, 0x10_0000, 512, 2, 8, true));
        assemble(|a, r| pointer_chase(a, r, 0x20_0000, 64, 100, 20, 0x30_0000));
        assemble(|a, r| indexed_gather(a, r, 0x40_0000, 0x50_0000, 128, 1024, 2));
        assemble(|a, r| branchy(a, r, 0x60_0000, 256, 2));
        assemble(|a, _| fp_compute(a, 100, 5));
        assemble(|a, _| stencil(a, 0x70_0000, 32, 16, 2));
        assemble(|a, _| dp_inner(a, 0x80_0000, 256, 2));
        assemble(|a, _| int_div_mix(a, 50));
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let p1 = assemble(|a, r| pointer_chase(a, r, 0x20_0000, 64, 100, 20, 0x30_0000));
        let p2 = assemble(|a, r| pointer_chase(a, r, 0x20_0000, 64, 100, 20, 0x30_0000));
        assert_eq!(p1, p2);
    }
}
