//! Parsec analogs — the Fig. 7 workload set, each a 4-thread
//! shared-memory program.
//!
//! Threads mostly work on private slices (data-parallel, as the real
//! suite does between synchronisation points), with two workloads —
//! `canneal` and `fluidanimate` — taking a shared spinlock built from
//! LL/SC, which exercises the coherence protocol and GhostMinion's
//! Shared-only / commit-replay coherence extension (§4.6).

use crate::kernels::*;
use crate::Scale;
use gm_isa::{Asm, Program, Reg};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 4-thread workload: one program per core.
#[derive(Clone, Debug)]
pub struct ParsecWorkload {
    pub name: &'static str,
    pub thread_programs: Vec<Program>,
}

const M: u64 = 0x0100_0000;
/// Shared region used by lock-based workloads (same address in every
/// thread's program).
const SHARED: u64 = 0x7000_0000;

/// Emits `times` lock-protected increments of a shared counter.
fn locked_increments(a: &mut Asm, lock: u64, counter: u64, times: u64) {
    let (laddr, caddr, tmp, ok, i, n, one) = (
        Reg::x(21),
        Reg::x(22),
        Reg::x(23),
        Reg::x(24),
        Reg::x(25),
        Reg::x(26),
        Reg::x(27),
    );
    a.li(laddr, lock as i64);
    a.li(caddr, counter as i64);
    a.li(i, 0);
    a.li(n, times as i64);
    a.li(one, 1);
    let outer = a.here();
    let acquire = a.here();
    a.ll(tmp, laddr);
    a.bne(tmp, Reg::ZERO, acquire);
    a.sc(ok, one, laddr);
    a.bne(ok, Reg::ZERO, acquire);
    a.fence(); // acquire
    a.ld(tmp, caddr, 0);
    a.addi(tmp, tmp, 1);
    a.st(tmp, caddr, 0);
    a.st(Reg::ZERO, laddr, 0); // release (stores drain in order)
    a.addi(i, i, 1);
    a.bne(i, n, outer);
}

fn threads(
    name: &'static str,
    seed: u64,
    scale: Scale,
    per_thread: impl Fn(&mut Asm, &mut StdRng, u64, u64),
) -> ParsecWorkload {
    let f = scale.factor();
    let thread_programs = (0..4u64)
        .map(|tid| {
            let mut a = Asm::new(format!("{name}-t{tid}"));
            let mut rng = StdRng::seed_from_u64(0x9a95_ec00 ^ seed ^ tid);
            per_thread(&mut a, &mut rng, tid, f);
            a.halt();
            a.assemble()
        })
        .collect();
    ParsecWorkload {
        name,
        thread_programs,
    }
}

/// Builds the 7 Parsec analogs at the given scale, in Fig. 7 order.
pub fn parsec_analogs(scale: Scale) -> Vec<ParsecWorkload> {
    vec![
        threads("blackscholes", 1, scale, |a, _, tid, f| {
            // Embarrassingly parallel option pricing: pure FP per thread.
            fp_compute(a, 900 * f + tid * 7, 8);
        }),
        threads("canneal", 2, scale, |a, r, tid, f| {
            // Random element swaps over a big netlist + shared progress
            // counter under a lock.
            pointer_chase(a, r, M * (1 + tid), 1 << 13, 250 * f, 8, M * 9 + tid * M);
            locked_increments(a, SHARED, SHARED + 64, 4 * f);
        }),
        threads("ferret", 3, scale, |a, r, tid, f| {
            // Similarity search pipeline: gathers + ranking loops.
            indexed_gather(a, r, M * (1 + tid), M * (5 + tid), 1024, 1 << 15, f / 2 + 1);
            dp_inner(a, M * (9 + tid), 1024, f / 3 + 1);
        }),
        threads("fluidanimate", 4, scale, |a, _, tid, f| {
            stencil(a, M * (1 + tid), 256, 32, f / 2 + 1);
            locked_increments(a, SHARED, SHARED + 64, 3 * f);
        }),
        threads("freqmine", 5, scale, |a, r, tid, f| {
            // FP-tree mining: pointer chases over private trees.
            pointer_chase(a, r, M * (1 + tid), 1 << 12, 300 * f, 6, M * (9 + tid));
        }),
        threads("streamcluster", 6, scale, |a, _, tid, f| {
            // Distance computations over streamed points.
            stream_sum(a, M * (1 + tid), 1 << 15, f / 2 + 1, 8, true);
            fp_compute(a, 200 * f, 50);
        }),
        threads("swaptions", 7, scale, |a, _, tid, f| {
            fp_compute(a, 1100 * f + tid * 3, 12);
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_figure7() {
        let names: Vec<&str> = parsec_analogs(Scale::Test).iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "blackscholes",
                "canneal",
                "ferret",
                "fluidanimate",
                "freqmine",
                "streamcluster",
                "swaptions"
            ]
        );
    }

    #[test]
    fn threads_have_disjoint_private_data() {
        for p in parsec_analogs(Scale::Test) {
            if p.name == "canneal" || p.name == "fluidanimate" {
                continue; // intentionally share a region
            }
            let mut ranges: Vec<(u64, u64)> = Vec::new();
            for t in &p.thread_programs {
                for d in &t.program_data() {
                    for &(b, e) in &ranges {
                        assert!(
                            d.1 <= b || d.0 >= e,
                            "{}: overlapping data {:#x}..{:#x} vs {:#x}..{:#x}",
                            p.name,
                            d.0,
                            d.1,
                            b,
                            e
                        );
                    }
                }
                for d in t.program_data() {
                    ranges.push(d);
                }
            }
        }
    }

    trait ProgData {
        fn program_data(&self) -> Vec<(u64, u64)>;
    }
    impl ProgData for Program {
        fn program_data(&self) -> Vec<(u64, u64)> {
            self.data.iter().map(|d| (d.base, d.end())).collect()
        }
    }

    #[test]
    fn locked_workloads_reference_the_shared_region() {
        let all = parsec_analogs(Scale::Test);
        let canneal = all.iter().find(|p| p.name == "canneal").unwrap();
        let has_ll = canneal.thread_programs[0]
            .insts
            .iter()
            .any(|i| i.op == gm_isa::Op::Ll);
        assert!(has_ll, "canneal threads must use LL/SC");
    }
}
