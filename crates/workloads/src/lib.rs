//! Synthetic workload analogs for the GhostMinion evaluation.
//!
//! The paper evaluates on SPEC CPU2006, SPECspeed 2017 and Parsec. Those
//! suites cannot be redistributed, so this crate provides one synthetic
//! kernel per named benchmark, built from a small library of
//! [`kernels`] whose parameters (working-set size, pointer-chasing
//! depth, branch entropy, divide density, stride regularity) are chosen
//! so each analog exhibits the *microarchitectural character* that
//! drives that benchmark's behaviour in the paper's figures:
//!
//! * `mcf` — dependent pointer chasing over a multi-MiB arena with
//!   data-dependent early-exit branches, so wrong-path execution does
//!   useful prefetching (the paper's explanation of its ≈30% overhead);
//! * `lbm`/`bwaves`/`libquantum` — large-footprint streaming where the
//!   stride prefetcher and DRAM schedule dominate;
//! * `gobmk`/`sjeng` — high branch entropy (game trees), stressing
//!   squash/wipe paths;
//! * `povray`/`calculix` — FP divide/sqrt density (the non-pipelined
//!   units of §4.9 and SpectreRewind);
//! * `omnetpp`/`xalancbmk`/`astar` — indexed/pointer loads whose
//!   addresses depend on prior loads (the STT taint-delay worst case);
//! * `gamess`/`hmmer`/`h264ref` — small working sets that live in the
//!   L1, where every scheme should be near 1.0.
//!
//! Every program is deterministic (fixed seeds), self-contained
//! (data segments included) and terminates with `halt`.

pub mod kernels;
mod parsec;
mod spec2006;
mod spec2017;

pub use parsec::{parsec_analogs, ParsecWorkload};
pub use spec2006::spec2006_analogs;
pub use spec2017::spec2017_analogs;

use gm_isa::Program;

/// How big a run should be; chosen per harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for unit tests (~5–20k dynamic instructions).
    Test,
    /// Medium runs for figure regeneration (~100–300k dynamic
    /// instructions) — big enough for caches and predictors to warm.
    Bench,
    /// Long runs for confirmation sweeps.
    Full,
}

impl Scale {
    /// Multiplier applied to per-kernel base iteration counts.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Bench => 12,
            Scale::Full => 60,
        }
    }

    /// CLI/JSON name of the scale.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Bench => "bench",
            Scale::Full => "full",
        }
    }

    /// Parses a CLI scale name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "test" => Some(Scale::Test),
            "bench" => Some(Scale::Bench),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// A named single-threaded workload.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    pub program: Program,
}

/// The benchmark suites the paper evaluates on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CPU2006 analogs (Figures 6, 9, 10, 11, power, §4.9).
    Spec2006,
    /// SPECspeed 2017 analogs (Figure 8).
    Spec2017,
    /// 4-thread Parsec analogs (Figure 7).
    Parsec,
}

impl Suite {
    /// Display name used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Spec2006 => "spec2006",
            Suite::Spec2017 => "spec2017",
            Suite::Parsec => "parsec",
        }
    }
}

/// One unit of simulation: a named workload with one program per core.
///
/// This is the common shape behind single-threaded [`Workload`]s (one
/// program) and 4-thread [`ParsecWorkload`]s (four programs), so a
/// single sweep loop can run either.
#[derive(Debug)]
pub struct WorkloadUnit {
    pub name: &'static str,
    pub programs: Vec<Program>,
    /// Memo slot for this unit's per-program content digests
    /// (`gm-results` fills it on first fingerprint). One unit is
    /// fingerprinted once per scheme column — seven and more times per
    /// sweep — and its programs never change after construction, so
    /// hashing a multi-MiB image once per *unit* instead of once per
    /// *job* is pure saving. The manual [`Clone`] below resets the slot:
    /// a clone's programs can be edited freely (tests do) and its first
    /// fingerprint recomputes from its own content.
    pub program_shas: std::sync::OnceLock<Vec<String>>,
}

impl WorkloadUnit {
    /// Number of cores this unit occupies.
    pub fn threads(&self) -> usize {
        self.programs.len()
    }
}

impl Clone for WorkloadUnit {
    fn clone(&self) -> Self {
        Self {
            name: self.name,
            programs: self.programs.clone(),
            // Deliberately NOT cloned: stale digests on a subsequently
            // mutated clone would silently alias two different jobs in
            // the result store.
            program_shas: std::sync::OnceLock::new(),
        }
    }
}

impl From<Workload> for WorkloadUnit {
    fn from(w: Workload) -> Self {
        Self {
            name: w.name,
            programs: vec![w.program],
            program_shas: std::sync::OnceLock::new(),
        }
    }
}

impl From<ParsecWorkload> for WorkloadUnit {
    fn from(w: ParsecWorkload) -> Self {
        Self {
            name: w.name,
            programs: w.thread_programs,
            program_shas: std::sync::OnceLock::new(),
        }
    }
}

/// A suite of [`WorkloadUnit`]s at one scale — the workload axis of an
/// experiment sweep.
#[derive(Clone, Debug)]
pub struct WorkloadSet {
    pub suite: Suite,
    pub units: Vec<WorkloadUnit>,
}

impl WorkloadSet {
    /// Builds the full workload set for `suite` at `scale`.
    pub fn new(suite: Suite, scale: Scale) -> Self {
        let units = match suite {
            Suite::Spec2006 => spec2006_analogs(scale)
                .into_iter()
                .map(WorkloadUnit::from)
                .collect(),
            Suite::Spec2017 => spec2017_analogs(scale)
                .into_iter()
                .map(WorkloadUnit::from)
                .collect(),
            Suite::Parsec => parsec_analogs(scale)
                .into_iter()
                .map(WorkloadUnit::from)
                .collect(),
        };
        Self { suite, units }
    }

    /// Keeps only the units whose names appear in `names` (suite order is
    /// preserved). Useful for scaled-down smoke runs and tests.
    pub fn retain_names(&mut self, names: &[&str]) {
        self.units.retain(|u| names.contains(&u.name));
    }

    /// Number of units in the set.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_are_ordered() {
        assert!(Scale::Test.factor() < Scale::Bench.factor());
        assert!(Scale::Bench.factor() < Scale::Full.factor());
    }

    #[test]
    fn spec2006_has_the_figure6_lineup() {
        let w = spec2006_analogs(Scale::Test);
        assert_eq!(w.len(), 25);
        let names: Vec<&str> = w.iter().map(|w| w.name).collect();
        for expect in ["mcf", "libquantum", "gobmk", "povray", "xalancbmk"] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }

    #[test]
    fn spec2017_has_the_figure8_lineup() {
        let w = spec2017_analogs(Scale::Test);
        assert_eq!(w.len(), 18);
    }

    #[test]
    fn parsec_has_the_figure7_lineup() {
        let w = parsec_analogs(Scale::Test);
        assert_eq!(w.len(), 7);
        for p in &w {
            assert_eq!(p.thread_programs.len(), 4, "{}: 4-thread Parsec", p.name);
        }
    }

    #[test]
    fn all_programs_are_statically_valid() {
        for w in spec2006_analogs(Scale::Test) {
            assert!(w.program.validate().is_ok(), "{} invalid", w.name);
            assert!(!w.program.is_empty());
        }
        for w in spec2017_analogs(Scale::Test) {
            assert!(w.program.validate().is_ok(), "{} invalid", w.name);
        }
        for p in parsec_analogs(Scale::Test) {
            for t in &p.thread_programs {
                assert!(t.validate().is_ok(), "{} invalid", p.name);
            }
        }
    }

    #[test]
    fn workload_sets_unify_single_and_multi_threaded_suites() {
        let s06 = WorkloadSet::new(Suite::Spec2006, Scale::Test);
        assert_eq!(s06.len(), 25);
        assert!(s06.units.iter().all(|u| u.threads() == 1));

        let par = WorkloadSet::new(Suite::Parsec, Scale::Test);
        assert_eq!(par.len(), 7);
        assert!(par.units.iter().all(|u| u.threads() == 4));
        assert_eq!(par.suite.name(), "parsec");
    }

    #[test]
    fn retain_names_filters_in_suite_order() {
        let mut s = WorkloadSet::new(Suite::Spec2006, Scale::Test);
        s.retain_names(&["hmmer", "gamess"]);
        let names: Vec<&str> = s.units.iter().map(|u| u.name).collect();
        // gamess precedes hmmer in the suite lineup regardless of the
        // filter's order.
        assert_eq!(names, ["gamess", "hmmer"]);
        s.retain_names(&[]);
        assert!(s.is_empty());
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = spec2006_analogs(Scale::Test);
        let b = spec2006_analogs(Scale::Test);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.program, y.program, "{} must be reproducible", x.name);
        }
    }
}
