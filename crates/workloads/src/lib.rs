//! Synthetic workload analogs for the GhostMinion evaluation.
//!
//! The paper evaluates on SPEC CPU2006, SPECspeed 2017 and Parsec. Those
//! suites cannot be redistributed, so this crate provides one synthetic
//! kernel per named benchmark, built from a small library of
//! [`kernels`] whose parameters (working-set size, pointer-chasing
//! depth, branch entropy, divide density, stride regularity) are chosen
//! so each analog exhibits the *microarchitectural character* that
//! drives that benchmark's behaviour in the paper's figures:
//!
//! * `mcf` — dependent pointer chasing over a multi-MiB arena with
//!   data-dependent early-exit branches, so wrong-path execution does
//!   useful prefetching (the paper's explanation of its ≈30% overhead);
//! * `lbm`/`bwaves`/`libquantum` — large-footprint streaming where the
//!   stride prefetcher and DRAM schedule dominate;
//! * `gobmk`/`sjeng` — high branch entropy (game trees), stressing
//!   squash/wipe paths;
//! * `povray`/`calculix` — FP divide/sqrt density (the non-pipelined
//!   units of §4.9 and SpectreRewind);
//! * `omnetpp`/`xalancbmk`/`astar` — indexed/pointer loads whose
//!   addresses depend on prior loads (the STT taint-delay worst case);
//! * `gamess`/`hmmer`/`h264ref` — small working sets that live in the
//!   L1, where every scheme should be near 1.0.
//!
//! Every program is deterministic (fixed seeds), self-contained
//! (data segments included) and terminates with `halt`.

pub mod kernels;
mod parsec;
mod spec2006;
mod spec2017;

pub use parsec::{parsec_analogs, ParsecWorkload};
pub use spec2006::spec2006_analogs;
pub use spec2017::spec2017_analogs;

use gm_isa::Program;

/// How big a run should be; chosen per harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for unit tests (~5–20k dynamic instructions).
    Test,
    /// Medium runs for figure regeneration (~100–300k dynamic
    /// instructions) — big enough for caches and predictors to warm.
    Bench,
    /// Long runs for confirmation sweeps.
    Full,
}

impl Scale {
    /// Multiplier applied to per-kernel base iteration counts.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Bench => 12,
            Scale::Full => 60,
        }
    }
}

/// A named single-threaded workload.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    pub program: Program,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_are_ordered() {
        assert!(Scale::Test.factor() < Scale::Bench.factor());
        assert!(Scale::Bench.factor() < Scale::Full.factor());
    }

    #[test]
    fn spec2006_has_the_figure6_lineup() {
        let w = spec2006_analogs(Scale::Test);
        assert_eq!(w.len(), 25);
        let names: Vec<&str> = w.iter().map(|w| w.name).collect();
        for expect in ["mcf", "libquantum", "gobmk", "povray", "xalancbmk"] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }

    #[test]
    fn spec2017_has_the_figure8_lineup() {
        let w = spec2017_analogs(Scale::Test);
        assert_eq!(w.len(), 18);
    }

    #[test]
    fn parsec_has_the_figure7_lineup() {
        let w = parsec_analogs(Scale::Test);
        assert_eq!(w.len(), 7);
        for p in &w {
            assert_eq!(p.thread_programs.len(), 4, "{}: 4-thread Parsec", p.name);
        }
    }

    #[test]
    fn all_programs_are_statically_valid() {
        for w in spec2006_analogs(Scale::Test) {
            assert!(w.program.validate().is_ok(), "{} invalid", w.name);
            assert!(!w.program.is_empty());
        }
        for w in spec2017_analogs(Scale::Test) {
            assert!(w.program.validate().is_ok(), "{} invalid", w.name);
        }
        for p in parsec_analogs(Scale::Test) {
            for t in &p.thread_programs {
                assert!(t.validate().is_ok(), "{} invalid", p.name);
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = spec2006_analogs(Scale::Test);
        let b = spec2006_analogs(Scale::Test);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.program, y.program, "{} must be reproducible", x.name);
        }
    }
}
