//! SPEC CPU2006 analogs — the Fig. 6 / Fig. 9 / Fig. 10 / Fig. 11
//! workload set, one kernel mix per named benchmark.
//!
//! Parameter choices encode each benchmark's published character (see
//! the crate docs and DESIGN.md): footprints set the cache level the
//! working set lives at, `rare_threshold` sets how much useful work
//! wrong-path execution does (the misspeculated-prefetch reliance the
//! paper identifies for mcf/gcc/bzip2/zeusmp), and divide density
//! exercises the non-pipelined units.

use crate::kernels::*;
use crate::{Scale, Workload};
use gm_isa::Asm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(
    name: &'static str,
    seed: u64,
    f: impl FnOnce(&mut Asm, &mut StdRng, u64),
    scale: Scale,
) -> Workload {
    let mut a = Asm::new(name);
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9 ^ seed);
    f(&mut a, &mut rng, scale.factor());
    a.halt();
    Workload {
        name,
        program: a.assemble(),
    }
}

// Base addresses are spaced 16 MiB apart so kernels never alias.
const M: u64 = 0x0100_0000;

/// Builds the 25 SPEC CPU2006 analogs at the given scale, in the order
/// Fig. 6 plots them.
pub fn spec2006_analogs(scale: Scale) -> Vec<Workload> {
    vec![
        build(
            "astar",
            1,
            |a, r, f| {
                // Grid pathfinding: dependent gathers + branchy heuristics.
                indexed_gather(a, r, M, 2 * M, 2048, 1 << 18, f);
                branchy(a, r, 3 * M, 512, 1);
            },
            scale,
        ),
        build(
            "bwaves",
            2,
            |a, _, f| {
                // FP streaming over a multi-MiB grid.
                stream_sum(a, M, 1 << 17, f, 8, true);
            },
            scale,
        ),
        build(
            "bzip2",
            3,
            |a, r, f| {
                // Data-dependent branches over buffers, plus modest
                // wrong-path prefetch reliance.
                branchy(a, r, M, 2048, f / 3 + 1);
                pointer_chase(a, r, 2 * M, 8192, 160 * f, 8, 3 * M);
            },
            scale,
        ),
        build(
            "cactusADM",
            4,
            |a, _, f| {
                stencil(a, M, 256, 64, f);
            },
            scale,
        ),
        build(
            "calculix",
            5,
            |a, _, f| {
                fp_compute(a, 900 * f, 6);
                stencil(a, M, 64, 16, f / 2 + 1);
            },
            scale,
        ),
        build(
            "gamess",
            6,
            |a, _, f| {
                // Compute-bound, cache-resident: every scheme ≈ 1.0.
                fp_compute(a, 1800 * f, 12);
            },
            scale,
        ),
        build(
            "gcc",
            7,
            |a, r, f| {
                // Irregular pointers + branches; relies on misspeculation
                // prefetching (paper: hurt on the data side).
                pointer_chase(a, r, M, 1 << 14, 500 * f, 12, 2 * M);
                branchy(a, r, 3 * M, 512, 1);
            },
            scale,
        ),
        build(
            "GemsFDTD",
            8,
            |a, _, f| {
                stencil(a, M, 512, 128, f / 2 + 1);
                stream_sum(a, 9 * M, 1 << 15, 1, 8, true);
            },
            scale,
        ),
        build(
            "gobmk",
            9,
            |a, r, f| {
                // Game tree: branch entropy dominates.
                branchy(a, r, M, 4096, f / 2 + 1);
            },
            scale,
        ),
        build(
            "gromacs",
            10,
            |a, _, f| {
                fp_compute(a, 1000 * f, 8);
                stream_sum(a, M, 1 << 13, 1, 1, true);
            },
            scale,
        ),
        build(
            "h264ref",
            11,
            |a, _, f| {
                dp_inner(a, M, 2048, f / 2 + 1);
                stream_sum(a, 2 * M, 1 << 12, 1, 1, false);
            },
            scale,
        ),
        build(
            "hmmer",
            12,
            |a, _, f| {
                // L1-resident dynamic programming.
                dp_inner(a, M, 4096, f / 2 + 1);
            },
            scale,
        ),
        build(
            "lbm",
            13,
            |a, _, f| {
                // Huge strided streams with stores: prefetcher + DRAM bound.
                stencil(a, M, 1024, 32, f / 3 + 1);
                stream_sum(a, 9 * M, 1 << 16, f / 3 + 1, 8, true);
            },
            scale,
        ),
        build(
            "leslie3d",
            14,
            |a, _, f| {
                // Multiple concurrent streams: sensitive to minion capacity.
                stencil(a, M, 512, 64, f / 2 + 1);
                stencil(a, 9 * M, 512, 64, f / 2 + 1);
            },
            scale,
        ),
        build(
            "libquantum",
            15,
            |a, _, f| {
                // Strided toggle sweep over a large vector.
                stream_sum(a, M, 1 << 16, f, 8, false);
            },
            scale,
        ),
        build(
            "mcf",
            16,
            |a, r, f| {
                // The paper's worst case: dependent chase over ~4 MiB with
                // slow-resolving rare branches -> wrong-path prefetching.
                pointer_chase(a, r, M, 1 << 16, 1200 * f, 48, 9 * M);
            },
            scale,
        ),
        build(
            "milc",
            17,
            |a, r, f| {
                indexed_gather(a, r, M, 2 * M, 4096, 1 << 19, f / 2 + 1);
            },
            scale,
        ),
        build(
            "namd",
            18,
            |a, r, f| {
                fp_compute(a, 1200 * f, 16);
                indexed_gather(a, r, M, 2 * M, 1024, 1 << 14, f / 2 + 1);
            },
            scale,
        ),
        build(
            "omnetpp",
            19,
            |a, r, f| {
                // Event-queue pointer churn: chases + gathers; the paper's
                // leapfrog-heavy workload.
                pointer_chase(a, r, M, 1 << 13, 600 * f, 6, 2 * M);
                indexed_gather(a, r, 3 * M, 4 * M, 1024, 1 << 15, f / 3 + 1);
            },
            scale,
        ),
        build(
            "povray",
            20,
            |a, r, f| {
                // Divide/sqrt dense; small working set (spikes only with
                // tiny minions, Fig. 11).
                fp_compute(a, 1000 * f, 3);
                branchy(a, r, M, 256, 1);
            },
            scale,
        ),
        build(
            "sjeng",
            21,
            |a, r, f| {
                branchy(a, r, M, 2048, f / 2 + 1);
                dp_inner(a, 2 * M, 512, 1);
            },
            scale,
        ),
        build(
            "soplex",
            22,
            |a, r, f| {
                // Sparse-matrix gathers over a big arena: the paper's
                // timeleap workload (same-line requests in MSHR windows).
                indexed_gather(a, r, M, 2 * M, 8192, 1 << 20, f / 3 + 1);
            },
            scale,
        ),
        build(
            "tonto",
            23,
            |a, _, f| {
                fp_compute(a, 1500 * f, 10);
            },
            scale,
        ),
        build(
            "xalancbmk",
            24,
            |a, r, f| {
                pointer_chase(a, r, M, 1 << 12, 400 * f, 8, 2 * M);
                indexed_gather(a, r, 3 * M, 4 * M, 1024, 1 << 16, f / 3 + 1);
            },
            scale,
        ),
        build(
            "zeusmp",
            25,
            |a, r, f| {
                stencil(a, M, 256, 128, f / 2 + 1);
                pointer_chase(a, r, 9 * M, 4096, 80 * f, 10, 10 * M);
            },
            scale,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_figure6_order() {
        let names: Vec<&str> = spec2006_analogs(Scale::Test)
            .iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(names[0], "astar");
        assert_eq!(names[15], "mcf");
        assert_eq!(names[24], "zeusmp");
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn mcf_has_multi_mib_footprint() {
        let w = &spec2006_analogs(Scale::Test)[15];
        let bytes: usize = w.program.data.iter().map(|d| d.bytes.len()).sum();
        assert!(
            bytes >= 4 * 1024 * 1024,
            "mcf analog must exceed the 2 MiB L2 ({bytes} bytes)"
        );
    }

    #[test]
    fn gamess_is_cache_resident() {
        let w = spec2006_analogs(Scale::Test)
            .into_iter()
            .find(|w| w.name == "gamess")
            .unwrap();
        let bytes: usize = w.program.data.iter().map(|d| d.bytes.len()).sum();
        assert!(bytes < 64 * 1024, "gamess analog must fit in the L1");
    }

    #[test]
    fn scaling_increases_code_or_iterations() {
        // Same static program, more dynamic work: loop bounds live in
        // immediates, so check a known iteration register constant grows.
        let t = &spec2006_analogs(Scale::Test)[15].program;
        let b = &spec2006_analogs(Scale::Bench)[15].program;
        assert_eq!(t.len(), b.len(), "static code identical across scales");
        assert_ne!(t, b, "immediates must differ");
    }
}
