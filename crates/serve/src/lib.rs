#![warn(missing_docs)]

//! The result-service daemon behind `gm-serve`: a [`Server`] fronting
//! one [`ResultStore`] over the `gm-results` wire protocol.
//!
//! Built resilience-first, matching the store it guards:
//!
//! * **Connection-per-thread accept loop**, bounded by
//!   [`ServeConfig::max_inflight`] — excess connections wait in the
//!   listener backlog instead of spawning unbounded threads.
//! * **Per-connection deadlines** on every read and write: a stalled
//!   or half-dead peer is dropped, never able to wedge the daemon.
//! * **Checksum verification on every `Put`**: the server re-renders
//!   the record it received and recomputes its SHA-256; a mismatch
//!   with the client's claim is rejected without appending — a garbled
//!   frame can cost an exchange, never corrupt the store.
//! * **Graceful drain**: triggering the shared [`Shutdown`] flag stops
//!   the accept loop, lets in-flight connections finish, fsyncs every
//!   store file, and returns — `kill -TERM` is always safe, and even
//!   `kill -9` leaves a store the next `gm-run store --verify` passes
//!   (that guarantee is the local store's, not the daemon's).
//!
//! The library form exists so tests can run a real server in-process
//! (own thread, loopback socket, deterministic shutdown) without
//! managing a child process.

use gm_results::{read_frame, sha256_hex, write_frame, Request, Response, ResultStore};
use gm_stats::Json;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs of a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Connections served concurrently; excess waits in the backlog.
    pub max_inflight: usize,
    /// Deadline for each read from a connection. Doubles as the poll
    /// interval at which an idle connection observes a shutdown.
    pub read_timeout: Duration,
    /// Deadline for each write to a connection.
    pub write_timeout: Duration,
    /// Whether store appends fsync before being acknowledged.
    pub sync: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_inflight: 32,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(5),
            sync: false,
        }
    }
}

/// A shared drain flag: trigger it (from a signal handler bridge, a
/// test, or another thread) and the server stops accepting, finishes
/// in-flight connections, fsyncs, and returns. Deliberately a value,
/// not a process global, so parallel in-process servers in tests stay
/// independent.
#[derive(Clone, Debug, Default)]
pub struct Shutdown(Arc<AtomicBool>);

impl Shutdown {
    /// A flag that is not yet set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the drain.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the drain has been requested.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Deterministic request counters (no wall-clock anywhere): what
/// `Stats` reports and [`Server::run`] returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Frames decoded as requests (well-formed or not).
    pub requests: u64,
    /// `Get` requests served.
    pub gets: u64,
    /// `Get`s answered with a record.
    pub hits: u64,
    /// `Get`s answered `NotFound`.
    pub misses: u64,
    /// `Put`s verified and appended.
    pub puts_accepted: u64,
    /// `Put`s rejected (checksum mismatch, bad record, append failure).
    pub puts_rejected: u64,
    /// Requests answered with an error (including rejected puts).
    pub errors: u64,
    /// Records currently indexed.
    pub records: u64,
    /// Experiments currently indexed.
    pub experiments: u64,
}

impl ServeStats {
    /// The `Stats` response body. Field order is fixed — the output of
    /// `gm-serve --status` is byte-deterministic given equal counters.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("requests", self.requests)
            .set("gets", self.gets)
            .set("hits", self.hits)
            .set("misses", self.misses)
            .set("puts_accepted", self.puts_accepted)
            .set("puts_rejected", self.puts_rejected)
            .set("errors", self.errors)
            .set("records", self.records)
            .set("experiments", self.experiments);
        j
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    gets: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    puts_accepted: AtomicU64,
    puts_rejected: AtomicU64,
    errors: AtomicU64,
}

/// State shared between the accept loop and connection threads.
struct Inner {
    store: ResultStore,
    cfg: ServeConfig,
    shutdown: Shutdown,
    /// (experiment, fingerprint) → sha-stripped record. Loaded from
    /// the store at bind time, extended by every accepted `Put`.
    index: Mutex<HashMap<(String, String), Json>>,
    experiments: Mutex<std::collections::BTreeSet<String>>,
    counters: Counters,
    inflight: AtomicUsize,
}

impl Inner {
    fn stats(&self) -> ServeStats {
        let index = self.index.lock().unwrap_or_else(PoisonError::into_inner);
        let experiments = self
            .experiments
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let c = &self.counters;
        ServeStats {
            requests: c.requests.load(Ordering::Relaxed),
            gets: c.gets.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            puts_accepted: c.puts_accepted.load(Ordering::Relaxed),
            puts_rejected: c.puts_rejected.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            records: index.len() as u64,
            experiments: experiments.len() as u64,
        }
    }
}

/// An experiment name the daemon will touch a file for: a path
/// component, never a path. Rejecting everything else closes the
/// traversal hole a hostile `Put{experiment: "../../etc/cron.d/x"}`
/// would otherwise open.
fn valid_experiment(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// A bound, not-yet-running result service.
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Loads `store`'s records into the in-memory index and binds the
    /// listener on `listen` (e.g. `127.0.0.1:0` for an ephemeral
    /// port). The server does not serve until [`Server::run`].
    pub fn bind(
        mut store: ResultStore,
        listen: &str,
        cfg: ServeConfig,
        shutdown: Shutdown,
    ) -> io::Result<Self> {
        store.set_sync(cfg.sync);
        let mut index = HashMap::new();
        let mut experiments = std::collections::BTreeSet::new();
        for experiment in store.experiments()? {
            let shard = store.load(&experiment)?;
            for (fingerprint, record) in shard.records {
                index.insert((experiment.clone(), fingerprint), record);
            }
            experiments.insert(experiment);
        }
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            inner: Arc::new(Inner {
                store,
                cfg,
                shutdown,
                index: Mutex::new(index),
                experiments: Mutex::new(experiments),
                counters: Counters::default(),
                inflight: AtomicUsize::new(0),
            }),
        })
    }

    /// The address the listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A snapshot of the counters (also served as `Stats`).
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Serves until the [`Shutdown`] flag is triggered, then drains:
    /// stops accepting, joins in-flight connections, fsyncs every
    /// store file, and returns the final counters.
    pub fn run(self) -> io::Result<ServeStats> {
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        while !self.inner.shutdown.is_set() {
            handles.retain(|h| !h.is_finished());
            if handles.len() >= self.inner.cfg.max_inflight {
                thread::sleep(Duration::from_millis(2));
                continue;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let inner = Arc::clone(&self.inner);
                    inner.inflight.fetch_add(1, Ordering::Relaxed);
                    handles.push(thread::spawn(move || {
                        serve_connection(&inner, stream);
                        inner.inflight.fetch_sub(1, Ordering::Relaxed);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: no new connections; in-flight ones observe the flag at
        // their next read deadline and close.
        for h in handles {
            let _ = h.join();
        }
        // Belt and braces for an unsynced config: everything the store
        // acknowledged reaches the disk before the daemon exits.
        for experiment in self.inner.store.experiments()? {
            let path = self.inner.store.path(&experiment);
            if let Ok(f) = std::fs::File::open(&path) {
                f.sync_all()?;
            }
        }
        Ok(self.inner.stats())
    }
}

/// Serves one connection until EOF, error, or drain.
fn serve_connection(inner: &Inner, mut stream: TcpStream) {
    // The listener is non-blocking; the accepted stream must not be.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    loop {
        if inner.shutdown.is_set() {
            // Draining: in-flight requests finished their write below;
            // an idle keepalive connection is closed here.
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle; poll the shutdown flag again
            }
            Err(_) => return,
        };
        inner.counters.requests.fetch_add(1, Ordering::Relaxed);
        let response = handle_request(inner, &payload);
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Decodes and answers one request frame.
fn handle_request(inner: &Inner, payload: &[u8]) -> Response {
    let c = &inner.counters;
    let reject = |message: String| {
        c.errors.fetch_add(1, Ordering::Relaxed);
        Response::Error { message }
    };
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => return reject(e),
    };
    match request {
        Request::Get {
            experiment,
            fingerprint,
        } => {
            c.gets.fetch_add(1, Ordering::Relaxed);
            if !valid_experiment(&experiment) {
                return reject(format!("invalid experiment name {experiment:?}"));
            }
            let index = inner.index.lock().unwrap_or_else(PoisonError::into_inner);
            match index.get(&(experiment, fingerprint)) {
                Some(record) => {
                    c.hits.fetch_add(1, Ordering::Relaxed);
                    Response::Found {
                        sha: sha256_hex(record.render().as_bytes()),
                        record: record.clone(),
                    }
                }
                None => {
                    c.misses.fetch_add(1, Ordering::Relaxed);
                    Response::NotFound
                }
            }
        }
        Request::Put {
            experiment,
            sha,
            record,
        } => {
            let rejected = |message: String| {
                c.puts_rejected.fetch_add(1, Ordering::Relaxed);
                reject(message)
            };
            if !valid_experiment(&experiment) {
                return rejected(format!("invalid experiment name {experiment:?}"));
            }
            if record.get("sha").is_some() {
                return rejected("record must not pre-carry a checksum".into());
            }
            let Some(fingerprint) = record.get("fingerprint").and_then(Json::as_str) else {
                return rejected("record has no fingerprint".into());
            };
            let fingerprint = fingerprint.to_owned();
            // The contract of the service: recompute the checksum over
            // the bytes *received* and compare with the client's claim.
            // A frame garbled anywhere between the two SHA computations
            // is rejected here and never reaches the store.
            let body = record.render();
            let computed = sha256_hex(body.as_bytes());
            if computed != sha {
                return rejected(format!(
                    "checksum mismatch: claimed {sha:.12}…, received bytes hash {computed:.12}…"
                ));
            }
            if let Err(e) = inner.store.append(&experiment, &record) {
                return rejected(format!("append failed: {e}"));
            }
            c.puts_accepted.fetch_add(1, Ordering::Relaxed);
            inner
                .index
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert((experiment.clone(), fingerprint), record);
            inner
                .experiments
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(experiment);
            Response::Stored
        }
        Request::Health => Response::Health {
            status: if inner.shutdown.is_set() {
                "draining".into()
            } else {
                "serving".into()
            },
        },
        Request::Stats => Response::Stats {
            stats: inner.stats().to_json(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_results::{RemoteStore, RetryPolicy};
    use std::path::PathBuf;

    /// A unique scratch directory under the system temp dir, removed
    /// on drop (the offline environment has no `tempfile` crate).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "gm-serve-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("scratch dir creates");
            Self(dir)
        }

        fn store(&self, name: &str) -> ResultStore {
            ResultStore::open(self.0.join(name)).expect("scratch store opens")
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn rec(fp: &str, cycles: u64) -> Json {
        let mut j = Json::object();
        j.set("fingerprint", fp).set("cycles", cycles);
        j
    }

    fn fast_client(addr: &str) -> RemoteStore {
        RemoteStore::new(addr).with_policy(RetryPolicy {
            attempts: 2,
            base_backoff: Duration::ZERO,
            seed: 1,
            breaker_threshold: 2,
        })
    }

    /// Starts an in-process server over `store`, returning its
    /// address, drain trigger, and join handle.
    fn spawn_server(
        store: ResultStore,
    ) -> (String, Shutdown, thread::JoinHandle<io::Result<ServeStats>>) {
        let shutdown = Shutdown::new();
        let cfg = ServeConfig {
            read_timeout: Duration::from_millis(25),
            ..ServeConfig::default()
        };
        let server = Server::bind(store, "127.0.0.1:0", cfg, shutdown.clone()).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = thread::spawn(move || server.run());
        (addr, shutdown, handle)
    }

    #[test]
    fn serves_gets_and_puts_and_drains_cleanly() {
        let scratch = Scratch::new("roundtrip");
        let seed = scratch.store("server");
        let fp_a = "aa".repeat(32);
        seed.append("fig6", &rec(&fp_a, 1)).unwrap();
        let (addr, shutdown, handle) = spawn_server(scratch.store("server"));

        let client = fast_client(&addr);
        assert_eq!(
            client.get("fig6", &fp_a).unwrap().render(),
            rec(&fp_a, 1).render(),
            "preloaded record served from the index"
        );
        let fp_b = "bb".repeat(32);
        assert!(client.get("fig6", &fp_b).is_none());
        assert!(client.put("fig6", &rec(&fp_b, 2)));
        assert_eq!(
            client.get("fig6", &fp_b).unwrap().render(),
            rec(&fp_b, 2).render()
        );

        shutdown.trigger();
        let stats = handle.join().unwrap().unwrap();
        assert_eq!((stats.gets, stats.hits, stats.misses), (3, 2, 1));
        assert_eq!((stats.puts_accepted, stats.puts_rejected), (1, 0));
        assert_eq!(stats.records, 2);
        // The put is durable: a fresh store handle reloads it.
        let reloaded = scratch.store("server").load("fig6").unwrap();
        assert_eq!(reloaded.records.len(), 2);
        assert_eq!(reloaded.checksummed, 2);
    }

    #[test]
    fn a_garbled_put_is_rejected_and_never_appended() {
        let scratch = Scratch::new("bad-put");
        let (addr, shutdown, handle) = spawn_server(scratch.store("server"));
        let fp = "cc".repeat(32);

        // Hand-roll a Put whose claimed sha does not match its record —
        // what a frame garbled in flight looks like to the server.
        let req = Request::Put {
            experiment: "fig6".into(),
            sha: "0".repeat(64),
            record: rec(&fp, 3),
        };
        let io = gm_results::TcpIo::default();
        use gm_results::NetIo;
        let resp = Response::decode(&io.exchange(&addr, &req.encode()).unwrap()).unwrap();
        match resp {
            Response::Error { message } => assert!(message.contains("checksum"), "{message}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        // Traversal and malformed records are rejected the same way.
        for req in [
            Request::Put {
                experiment: "../evil".into(),
                sha: "0".repeat(64),
                record: rec(&fp, 3),
            },
            Request::Put {
                experiment: "fig6".into(),
                sha: "0".repeat(64),
                record: Json::object().set("no_fingerprint", 1u64).clone(),
            },
        ] {
            let resp = Response::decode(&io.exchange(&addr, &req.encode()).unwrap()).unwrap();
            assert!(matches!(resp, Response::Error { .. }), "{req:?}");
        }

        shutdown.trigger();
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.puts_rejected, 3);
        assert_eq!(stats.puts_accepted, 0);
        assert!(
            !scratch.store("server").path("fig6").exists(),
            "nothing was appended"
        );
    }

    #[test]
    fn health_flips_to_draining_and_stats_counts_deterministically() {
        let scratch = Scratch::new("health");
        let (addr, shutdown, handle) = spawn_server(scratch.store("server"));
        let io = gm_results::TcpIo::default();
        use gm_results::NetIo;
        let health = Response::decode(&io.exchange(&addr, &Request::Health.encode()).unwrap());
        assert_eq!(
            health.unwrap(),
            Response::Health {
                status: "serving".into()
            }
        );
        let stats = Response::decode(&io.exchange(&addr, &Request::Stats.encode()).unwrap());
        match stats.unwrap() {
            Response::Stats { stats } => {
                // Requests counted so far: the health probe and the
                // stats request itself. No wall-clock fields.
                assert_eq!(stats.get("requests").unwrap().as_u64(), Some(2));
                assert!(stats.get("uptime").is_none());
                assert_eq!(
                    stats.render(),
                    ServeStats {
                        requests: 2,
                        ..ServeStats::default()
                    }
                    .to_json()
                    .render(),
                    "stats are byte-deterministic"
                );
            }
            other => panic!("{other:?}"),
        }
        shutdown.trigger();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_and_malformed_frames_cannot_wedge_the_daemon() {
        let scratch = Scratch::new("hostile");
        let (addr, shutdown, handle) = spawn_server(scratch.store("server"));
        // A malformed JSON frame gets an error response.
        use std::io::Write as _;
        let mut stream = TcpStream::connect(&addr).unwrap();
        write_frame(&mut stream, b"not json").unwrap();
        let resp = Response::decode(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
        // A hostile length prefix just drops the connection.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        // And the daemon still serves afterwards.
        let client = fast_client(&addr);
        let fp = "dd".repeat(32);
        assert!(client.put("fig6", &rec(&fp, 4)));
        shutdown.trigger();
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.puts_accepted, 1);
        assert!(stats.errors >= 1);
    }

    #[test]
    fn experiment_name_validation_is_strict() {
        for good in ["fig6", "t", "fig11_sweep", "a-b"] {
            assert!(valid_experiment(good), "{good}");
        }
        for bad in ["", "..", "a/b", "a\\b", "a.jsonl", "é", &"x".repeat(129)] {
            assert!(!valid_experiment(bad), "{bad}");
        }
    }
}
