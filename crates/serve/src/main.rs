//! The `gm-serve` binary: the result-service daemon, plus the
//! `--status` one-shot client.
//!
//! ```text
//! gm-serve --store DIR [--listen ADDR] [--port-file PATH] [--sync] [--max-inflight N]
//! gm-serve --status ADDR
//! ```
//!
//! The daemon serves until SIGINT/SIGTERM, then drains: stops
//! accepting, finishes in-flight connections, fsyncs the store, and
//! exits 0. `--port-file` writes the bound address (useful with
//! `--listen 127.0.0.1:0`) once the listener is up.
//!
//! Exit codes match `gm-run`: 0 success (including a graceful drain),
//! 1 hard failure, 2 usage error.

use gm_serve::{ServeConfig, Server, Shutdown};
use gm_stats::Json;
use std::time::Duration;

fn usage(program: &str) -> String {
    format!(
        "usage: {program} --store DIR [options]\n\
         \n\
         Serves DIR's result store over TCP (see README \"Result service\").\n\
         \n\
         options:\n\
         \x20 --store DIR         result store directory to serve (required)\n\
         \x20 --listen ADDR       address to bind (default 127.0.0.1:4460; use :0 for ephemeral)\n\
         \x20 --port-file PATH    write the bound address to PATH once listening\n\
         \x20 --sync              fsync every accepted Put before acknowledging it\n\
         \x20 --max-inflight N    serve at most N connections concurrently (default 32)\n\
         \x20 --status ADDR       one-shot client: print the daemon's health and stats as JSON\n\
         \x20 --help              this message\n\
         \n\
         exit codes: 0 success or graceful drain, 1 hard failure, 2 usage error\n"
    )
}

struct Options {
    store: Option<String>,
    listen: String,
    port_file: Option<String>,
    sync: bool,
    max_inflight: usize,
    status: Option<String>,
    help: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        store: None,
        listen: "127.0.0.1:4460".to_owned(),
        port_file: None,
        sync: false,
        max_inflight: 32,
        status: None,
        help: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs {what}"))
        };
        match arg.as_str() {
            "--store" => opts.store = Some(value("a directory")?),
            "--listen" => opts.listen = value("an address")?,
            "--port-file" => opts.port_file = Some(value("a path")?),
            "--sync" => opts.sync = true,
            "--max-inflight" => {
                opts.max_inflight = value("a count")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or("--max-inflight needs a positive integer")?;
            }
            "--status" => opts.status = Some(value("an address")?),
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if !opts.help && opts.status.is_none() && opts.store.is_none() {
        return Err("--store is required (or use --status ADDR)".into());
    }
    if opts.status.is_some() && opts.store.is_some() {
        return Err("--status is a client mode; it takes no --store".into());
    }
    Ok(opts)
}

/// `--status ADDR`: ask the daemon for `Health` and `Stats`, print one
/// JSON object. Counters only — no wall-clock fields — so equal server
/// states print equal bytes.
fn status(addr: &str) -> Result<(), String> {
    use gm_results::{NetIo, Request, Response, TcpIo};
    let io = TcpIo::default();
    let ask = |req: Request| -> Result<Response, String> {
        let payload = io
            .exchange(addr, &req.encode())
            .map_err(|e| format!("{addr}: {e}"))?;
        Response::decode(&payload)
    };
    let health = match ask(Request::Health)? {
        Response::Health { status } => status,
        other => return Err(format!("unexpected health answer: {other:?}")),
    };
    let stats = match ask(Request::Stats)? {
        Response::Stats { stats } => stats,
        other => return Err(format!("unexpected stats answer: {other:?}")),
    };
    let mut out = Json::object();
    out.set("health", health.as_str()).set("stats", stats);
    println!("{}", out.render());
    Ok(())
}

/// Process-wide signal flag. The handler may only do async-signal-safe
/// work, so it sets this and a watcher thread bridges it to the
/// server's [`Shutdown`].
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // No libc crate in the offline build; `signal` declared
        // directly. 2 = SIGINT, 15 = SIGTERM.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let program = args
        .first()
        .map(String::as_str)
        .unwrap_or("gm-serve")
        .to_owned();
    let opts = match parse(&args[1..]) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{program}: {e}");
            eprint!("{}", usage(&program));
            std::process::exit(2);
        }
    };
    if opts.help {
        print!("{}", usage(&program));
        return;
    }
    if let Some(addr) = &opts.status {
        if let Err(e) = status(addr) {
            eprintln!("{program}: {e}");
            std::process::exit(1);
        }
        return;
    }

    let fail = |what: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("{program}: {what}: {e}");
        std::process::exit(1);
    };
    let store_dir = opts.store.expect("checked by parse");
    let store = match gm_results::ResultStore::open(&store_dir) {
        Ok(s) => s,
        Err(e) => fail(&format!("opening store {store_dir:?}"), &e),
    };

    let shutdown = Shutdown::new();
    #[cfg(unix)]
    {
        sig::install();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || loop {
            if sig::SIGNALLED.load(std::sync::atomic::Ordering::SeqCst) {
                shutdown.trigger();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    let cfg = ServeConfig {
        max_inflight: opts.max_inflight,
        sync: opts.sync,
        ..ServeConfig::default()
    };
    let server = match Server::bind(store, &opts.listen, cfg, shutdown) {
        Ok(s) => s,
        Err(e) => fail(&format!("binding {:?}", opts.listen), &e),
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => fail("reading bound address", &e),
    };
    if let Some(path) = &opts.port_file {
        // Written atomically (tmp + rename): a reader polling for the
        // file never sees a half-written address.
        let tmp = format!("{path}.tmp");
        let write =
            std::fs::write(&tmp, format!("{addr}\n")).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            fail(&format!("writing port file {path:?}"), &e);
        }
    }
    eprintln!("gm-serve: serving {store_dir} on {addr} (SIGTERM/ctrl-c drains)");
    match server.run() {
        Ok(stats) => {
            eprintln!(
                "gm-serve: drained: {} request(s), {}/{} get hit(s), \
                 {} put(s) accepted, {} rejected",
                stats.requests, stats.hits, stats.gets, stats.puts_accepted, stats.puts_rejected
            );
        }
        Err(e) => fail("serving", &e),
    }
}
